"""Integration tests: the full IMC2 pipeline across modules."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    DATE,
    IMC2,
    DateConfig,
    EnumerateDependence,
    GreedyAccuracy,
    GreedyBid,
    MajorityVote,
    NoCopier,
    ReverseAuction,
    SOACInstance,
    solve_optimal,
)
from repro.core import DatasetIndex
from repro.datasets import generate_qatar_living_like
from repro.simulation.metrics import copier_detection_report


@pytest.fixture(scope="module")
def campaign():
    """One moderately sized campaign shared across this module."""
    dataset = generate_qatar_living_like(
        seed=17, n_tasks=60, n_workers=36, n_copiers=9, target_claims=1100
    )
    outcome = IMC2(requirement_cap=0.8).run(dataset)
    return dataset, outcome


class TestTwoStageFlow:
    def test_stage1_feeds_stage2(self, campaign):
        dataset, outcome = campaign
        # The auction's accuracy matrix is exactly stage 1's estimate,
        # restricted to the bid task sets.
        result = outcome.truth
        instance = outcome.instance
        for i, worker_id in enumerate(instance.worker_ids):
            row = result.worker_ids.index(worker_id)
            for j, task_id in enumerate(instance.task_ids):
                col = result.task_ids.index(task_id)
                if (worker_id, task_id) in dataset.claims:
                    assert instance.accuracy[i, j] == pytest.approx(
                        result.accuracy_matrix[row, col]
                    )

    def test_winners_cover_all_requirements(self, campaign):
        _, outcome = campaign
        coverage = outcome.instance.coverage(outcome.auction.winner_indexes)
        assert np.all(coverage >= outcome.instance.requirements - 1e-9)

    def test_accounting_identity(self, campaign):
        _, outcome = campaign
        total_utility = sum(outcome.worker_utilities.values())
        assert total_utility + outcome.platform_utility == pytest.approx(
            outcome.social_welfare
        )

    def test_payments_at_least_costs(self, campaign):
        _, outcome = campaign
        cost_by_id = dict(
            zip(outcome.instance.worker_ids, outcome.instance.costs)
        )
        for winner in outcome.winners:
            assert outcome.auction.payments[winner] >= cost_by_id[winner] - 1e-9


class TestCopierDetectionEndToEnd:
    def test_date_flags_true_copier_pairs(self, campaign):
        dataset, outcome = campaign
        report = copier_detection_report(outcome.truth, dataset)
        assert report.copier_pair_mean > 0.3
        assert report.copier_pair_mean > report.independent_pair_mean + 0.2

    def test_copiers_do_not_fool_date_but_fool_mv(self):
        """Aggregate check over seeds: DATE's edge over MV grows from
        copier pressure (the paper's core claim)."""
        date_wins = 0
        for seed in range(4):
            dataset = generate_qatar_living_like(
                seed=seed, n_tasks=50, n_workers=30, n_copiers=8, target_claims=900
            )
            index = DatasetIndex(dataset)
            mv = MajorityVote().run(dataset, index=index).precision()
            date = DATE().run(dataset, index=index).precision()
            if date >= mv:
                date_wins += 1
        assert date_wins >= 3


class TestAlgorithmFamilyOnSharedIndex:
    def test_all_truth_algorithms_compatible(self, campaign):
        dataset, _ = campaign
        index = DatasetIndex(dataset)
        results = {}
        for algo in (MajorityVote(), NoCopier(), DATE(), EnumerateDependence()):
            results[algo.method_name] = algo.run(dataset, index=index)
        precisions = {k: r.precision() for k, r in results.items()}
        # Copier-aware methods must not fall behind MV.
        assert precisions["DATE"] >= precisions["MV"] - 0.02
        assert precisions["ED"] >= precisions["MV"] - 0.02

    def test_all_auctions_on_same_instance(self, campaign):
        _, outcome = campaign
        instance = outcome.instance
        ra = ReverseAuction().run(instance)
        ga = GreedyAccuracy().run(instance)
        gb = GreedyBid().run(instance)
        for auction_outcome in (ra, ga, gb):
            assert instance.is_covering(auction_outcome.winner_indexes)
        assert ra.social_cost <= ga.social_cost + 1e-9
        assert ra.social_cost <= gb.social_cost + 1e-9


class TestGreedyVsOptimal:
    def test_ratio_within_bound_on_small_instances(self):
        from repro.auction.properties import approximation_bound

        for seed in range(3):
            dataset = generate_qatar_living_like(
                seed=seed, n_tasks=12, n_workers=14, n_copiers=3, target_claims=110
            )
            result = DATE().run(dataset)
            instance = SOACInstance.from_truth_discovery(
                dataset, result
            ).with_capped_requirements(0.6)
            greedy = ReverseAuction().run(instance)
            optimal = solve_optimal(instance)
            assert greedy.social_cost >= optimal.social_cost - 1e-9
            if optimal.social_cost > 0:
                ratio = greedy.social_cost / optimal.social_cost
                assert ratio <= approximation_bound(instance)
                assert ratio < 3.0  # far below the worst case in practice


class TestSimilarityExtensionEndToEnd:
    def test_multiple_presentations_merged(self):
        """Sec. IV-A scenario: the truth appears under two spellings;
        similarity-aware support must still find it."""
        from repro import Dataset, Task, WorkerProfile
        from repro.similarity import string_similarity

        tasks = (
            Task(task_id="affil", truth="UWisc"),
            # Background tasks all workers answer identically, keeping
            # their estimated accuracies comparable so the contested
            # task is decided by the support counts alone.
            *(
                Task(task_id=f"bg{k}", truth="agree")
                for k in range(4)
            ),
        )
        workers = tuple(WorkerProfile(worker_id=f"w{i}") for i in range(7))
        claims = {
            # Four spell-variants of the truth, split 2+2...
            ("w0", "affil"): "UWisc",
            ("w1", "affil"): "UWisc",
            ("w2", "affil"): "UWisc.",
            ("w3", "affil"): "UWisc.",
            # ...versus three agreeing on a distinct wrong answer.
            ("w4", "affil"): "MSR",
            ("w5", "affil"): "MSR",
            ("w6", "affil"): "MSR",
        }
        for k in range(4):
            for i in range(7):
                claims[(f"w{i}", f"bg{k}")] = "agree"
        dataset = Dataset(tasks=tasks, workers=workers, claims=claims)
        plain = DATE(DateConfig(max_iterations=5)).run(dataset)
        merged = DATE(
            DateConfig(
                max_iterations=5,
                similarity=string_similarity("levenshtein"),
                similarity_weight=1.0,
            )
        ).run(dataset)
        # Without merging, MSR's three exact votes win; with merging the
        # UWisc variants support each other.
        assert plain.truths["affil"] == "MSR"
        assert merged.truths["affil"] in ("UWisc", "UWisc.")


class TestDeterminismEndToEnd:
    def test_full_pipeline_reproducible(self):
        a = IMC2(requirement_cap=0.8).run(
            generate_qatar_living_like(
                seed=23, n_tasks=30, n_workers=18, n_copiers=4, target_claims=400
            )
        )
        b = IMC2(requirement_cap=0.8).run(
            generate_qatar_living_like(
                seed=23, n_tasks=30, n_workers=18, n_copiers=4, target_claims=400
            )
        )
        assert a.truth.truths == b.truth.truths
        assert a.auction.winner_ids == b.auction.winner_ids
        assert a.auction.payments == b.auction.payments
