"""Integration tests for warm-started (streaming) truth discovery.

The paper builds on Dong et al.'s "dynamic world" line of work: claims
arrive over time and the platform re-estimates after each batch.
``DATE.run(..., warm_start=previous)`` carries worker reputations and
truth estimates across batches.
"""

from __future__ import annotations

import pytest

from repro import DATE, DateConfig
from repro.datasets import generate_qatar_living_like


@pytest.fixture(scope="module")
def batches():
    """One campaign split into an early batch and the full dataset."""
    full = generate_qatar_living_like(
        seed=31, n_tasks=60, n_workers=30, n_copiers=7, target_claims=1000
    )
    early_tasks = [t.task_id for t in full.tasks[:30]]
    early = full.subset(task_ids=early_tasks)
    return early, full


class TestWarmStart:
    def test_same_final_quality(self, batches):
        early, full = batches
        cold = DATE().run(full)
        warm = DATE().run(full, warm_start=DATE().run(early))
        # Warm starting must not degrade the final estimate materially.
        assert warm.precision() >= cold.precision() - 0.05

    def test_converges_at_most_as_slow(self, batches):
        early, full = batches
        cold = DATE().run(full)
        warm = DATE().run(full, warm_start=DATE().run(early))
        assert warm.iterations <= cold.iterations + 1

    def test_unknown_workers_fall_back_to_epsilon(self, batches):
        early, full = batches
        # Warm start from a result over a *subset of workers*.
        early_workers = [w.worker_id for w in full.workers[:10]]
        partial = DATE().run(full.subset(worker_ids=early_workers))
        warm = DATE().run(full, warm_start=partial)
        assert set(warm.worker_accuracy) == {
            w.worker_id for w in full.workers
        }

    def test_warm_start_is_deterministic(self, batches):
        early, full = batches
        seed_result = DATE().run(early)
        a = DATE().run(full, warm_start=seed_result)
        b = DATE().run(full, warm_start=seed_result)
        assert a.truths == b.truths

    def test_warm_start_respects_new_claims(self, batches):
        early, full = batches
        warm = DATE().run(full, warm_start=DATE().run(early))
        # Every estimated truth is still an observed value of the task.
        for task_id, value in warm.truths.items():
            assert value in set(full.claims_by_task[task_id].values())

    def test_config_still_applies(self, batches):
        early, full = batches
        config = DateConfig(copy_prob_r=0.6, max_iterations=5)
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            warm = DATE(config).run(full, warm_start=DATE(config).run(early))
        assert warm.iterations <= 5
