"""Integration tests for warm-started (streaming) truth discovery.

The paper builds on Dong et al.'s "dynamic world" line of work: claims
arrive over time and the platform re-estimates after each batch.
``DATE.run(..., warm_start=previous)`` carries worker reputations and
truth estimates across batches, and ``repro.streaming`` turns that into
a long-lived online loop (incremental ingestion + dirty-scope
re-estimation + periodic full refresh).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import DATE, DateConfig
from repro.datasets import generate_qatar_living_like
from repro.streaming import OnlineDATE, replay_batches


@pytest.fixture(scope="module")
def batches():
    """One campaign split into an early batch and the full dataset."""
    full = generate_qatar_living_like(
        seed=31, n_tasks=60, n_workers=30, n_copiers=7, target_claims=1000
    )
    early_tasks = [t.task_id for t in full.tasks[:30]]
    early = full.subset(task_ids=early_tasks)
    return early, full


class TestWarmStart:
    def test_same_final_quality(self, batches):
        early, full = batches
        cold = DATE().run(full)
        warm = DATE().run(full, warm_start=DATE().run(early))
        # Warm starting must not degrade the final estimate materially.
        assert warm.precision() >= cold.precision() - 0.05

    def test_converges_at_most_as_slow(self, batches):
        early, full = batches
        cold = DATE().run(full)
        warm = DATE().run(full, warm_start=DATE().run(early))
        assert warm.iterations <= cold.iterations + 1

    def test_unknown_workers_fall_back_to_epsilon(self, batches):
        early, full = batches
        # Warm start from a result over a *subset of workers*.
        early_workers = [w.worker_id for w in full.workers[:10]]
        partial = DATE().run(full.subset(worker_ids=early_workers))
        warm = DATE().run(full, warm_start=partial)
        assert set(warm.worker_accuracy) == {
            w.worker_id for w in full.workers
        }

    def test_warm_start_is_deterministic(self, batches):
        early, full = batches
        seed_result = DATE().run(early)
        a = DATE().run(full, warm_start=seed_result)
        b = DATE().run(full, warm_start=seed_result)
        assert a.truths == b.truths

    def test_warm_start_respects_new_claims(self, batches):
        early, full = batches
        warm = DATE().run(full, warm_start=DATE().run(early))
        # Every estimated truth is still an observed value of the task.
        for task_id, value in warm.truths.items():
            assert value in set(full.claims_by_task[task_id].values())

    def test_config_still_applies(self, batches):
        early, full = batches
        config = DateConfig(copy_prob_r=0.6, max_iterations=5)
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            warm = DATE(config).run(full, warm_start=DATE(config).run(early))
        assert warm.iterations <= 5


class TestOnlineStreaming:
    """End-to-end: batched ingestion through the online subsystem."""

    @pytest.fixture(scope="class")
    def campaign(self):
        return generate_qatar_living_like(
            seed=47, n_tasks=80, n_workers=40, n_copiers=10, target_claims=1400
        )

    def test_final_refresh_equals_cold_run(self, campaign):
        online = OnlineDATE()
        for batch in replay_batches(campaign, 8):
            online.ingest(batch)
        final = online.refresh()
        cold = DATE().run(campaign)
        assert final.truths == cold.truths
        assert final.iterations == cold.iterations
        np.testing.assert_allclose(
            final.accuracy_matrix, cold.accuracy_matrix, atol=1e-9, rtol=0
        )
        assert final.precision() == cold.precision()

    def test_intermediate_estimates_track_ingested_tasks(self, campaign):
        online = OnlineDATE()
        seen: set[str] = set()
        for batch in replay_batches(campaign, 8):
            online.ingest(batch)
            seen |= {task_id for (_, task_id) in batch.claims}
            assert set(online.truths) == seen
            # Every estimate is an observed value of its task.
            for task_id, value in online.truths.items():
                assert value in set(
                    online.dataset.claims_by_task[task_id].values()
                )

    def test_intermediate_quality_close_to_cold(self, campaign):
        """The dirty-scope approximation trails a cold run before any
        refresh (early tasks never see late reputation evidence — that
        is the documented trade-off the refresh repairs), but it must
        stay in the same quality regime, and a periodic refresh must
        close the gap entirely."""
        online = OnlineDATE()
        for batch in replay_batches(campaign, 8):
            online.ingest(batch)
        cold = DATE().run(campaign)
        assert online.snapshot().precision() >= cold.precision() - 0.2
        refreshed = OnlineDATE(refresh_every=4)
        for batch in replay_batches(campaign, 8):
            refreshed.ingest(batch)
        assert refreshed.snapshot().precision() == cold.precision()

    def test_periodic_refresh_keeps_exactness_cadence(self, campaign):
        online = OnlineDATE(refresh_every=4)
        updates = [online.ingest(b) for b in replay_batches(campaign, 8)]
        assert sum(u.refreshed for u in updates) == 2
        assert updates[3].refreshed and updates[7].refreshed
        cold = DATE().run(campaign)
        assert online.truths == cold.truths
