"""Shared fixtures: small, fast, deterministic datasets and instances.

Also the single home of the Hypothesis profile: ``deadline=None`` is a
suite-wide policy (CI machines stall unpredictably; wall-clock is not a
correctness property), registered once here instead of repeated in
every ``@settings`` across the property suites.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import settings as hypothesis_settings

from repro import Dataset, SOACInstance, Task, WorkerProfile
from repro.datasets import generate_qatar_living_like

hypothesis_settings.register_profile("repro", deadline=None)
hypothesis_settings.load_profile("repro")


@pytest.fixture
def tiny_dataset() -> Dataset:
    """Four tasks, five workers, one obvious copier pair (w4 copies w3).

    Ground truth: every task's truth is its domain's first value "A".
    Workers w1, w2 are reliable independents, w3 errs on t2/t3, and w4
    copies w3 verbatim.  w5 answers only half the tasks.
    """
    tasks = tuple(
        Task(
            task_id=f"t{j}",
            domain=("A", "B", "C"),
            requirement=1.0,
            value=2.0,
            truth="A",
        )
        for j in range(4)
    )
    workers = (
        WorkerProfile(worker_id="w1", cost=2.0, reliability=0.9),
        WorkerProfile(worker_id="w2", cost=3.0, reliability=0.9),
        WorkerProfile(worker_id="w3", cost=1.0, reliability=0.5),
        WorkerProfile(
            worker_id="w4",
            cost=1.5,
            reliability=0.5,
            is_copier=True,
            sources=("w3",),
            copy_prob=1.0,
        ),
        WorkerProfile(worker_id="w5", cost=2.5, reliability=0.8),
    )
    claims = {
        ("w1", "t0"): "A", ("w1", "t1"): "A", ("w1", "t2"): "A", ("w1", "t3"): "A",
        ("w2", "t0"): "A", ("w2", "t1"): "A", ("w2", "t2"): "A", ("w2", "t3"): "A",
        ("w3", "t0"): "A", ("w3", "t1"): "B", ("w3", "t2"): "B", ("w3", "t3"): "B",
        ("w4", "t0"): "A", ("w4", "t1"): "B", ("w4", "t2"): "B", ("w4", "t3"): "B",
        ("w5", "t0"): "A", ("w5", "t1"): "A",
    }
    return Dataset(tasks=tasks, workers=workers, claims=claims)


@pytest.fixture
def qlf_small() -> Dataset:
    """A shrunken Qatar-Living-like world: fast but structurally faithful."""
    return generate_qatar_living_like(
        seed=3, n_tasks=40, n_workers=24, n_copiers=6, target_claims=600
    )


@pytest.fixture
def soac_small() -> SOACInstance:
    """A hand-checkable SOAC instance.

    Three tasks, four workers:

    - w0: covers t0 fully (acc 1.0), bid 1  -> cheap specialist
    - w1: covers t1 fully (acc 1.0), bid 1  -> cheap specialist
    - w2: covers t2 fully (acc 1.0), bid 1  -> cheap specialist
    - w3: covers all three at acc 1.0, bid 2 -> cheap generalist

    With requirements (1, 1, 1): the greedy picks w3 first
    (2 / 3 < 1 / 1), then any one task remains covered... actually w3
    alone covers everything, so S = {w3}, social cost 2; the optimum is
    also {w3}.
    """
    return SOACInstance(
        worker_ids=("w0", "w1", "w2", "w3"),
        task_ids=("t0", "t1", "t2"),
        requirements=np.array([1.0, 1.0, 1.0]),
        accuracy=np.array(
            [
                [1.0, 0.0, 0.0],
                [0.0, 1.0, 0.0],
                [0.0, 0.0, 1.0],
                [1.0, 1.0, 1.0],
            ]
        ),
        bids=np.array([1.0, 1.0, 1.0, 2.0]),
        costs=np.array([1.0, 1.0, 1.0, 2.0]),
        task_values=np.array([5.0, 5.0, 5.0]),
    )


@pytest.fixture
def soac_medium() -> SOACInstance:
    """A seeded random instance large enough for non-trivial auctions."""
    rng = np.random.default_rng(11)
    n, m = 12, 6
    accuracy = np.where(rng.random((n, m)) < 0.6, rng.uniform(0.3, 0.9, (n, m)), 0.0)
    bids = rng.uniform(1.0, 8.0, n)
    return SOACInstance(
        worker_ids=tuple(f"w{i}" for i in range(n)),
        task_ids=tuple(f"t{j}" for j in range(m)),
        requirements=np.full(m, 1.5),
        accuracy=accuracy,
        bids=bids,
        costs=bids.copy(),
        task_values=np.full(m, 6.0),
    )


#: Every array field of ClaimArrays the incremental append path must
#: splice identically to a cold rebuild; shared by the indexing unit
#: tests and the streaming property suite so a new field cannot be
#: covered by one and silently missed by the other.
CLAIM_ARRAY_FIELDS = (
    "claim_task", "claim_worker", "claim_code", "claim_group", "task_ptr",
    "group_ptr", "group_task", "group_code", "group_size", "task_group_ptr",
    "worker_ptr", "worker_claims",
)


def assert_same_claim_arrays(got, want) -> None:
    """Field-for-field equality of two ClaimArrays views."""
    import numpy as np

    for name in CLAIM_ARRAY_FIELDS:
        np.testing.assert_array_equal(
            getattr(got, name), getattr(want, name), err_msg=name
        )
    assert got.group_values == want.group_values
