"""Property-based tests for the dataset generators (hypothesis)."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import WorldConfig
from repro.datasets import generate_world, inject_copiers


@st.composite
def world_params(draw):
    n_tasks = draw(st.integers(min_value=2, max_value=20))
    n_workers = draw(st.integers(min_value=2, max_value=12))
    target = draw(
        st.integers(min_value=n_tasks, max_value=n_tasks * n_workers)
    )
    return WorldConfig(
        n_tasks=n_tasks,
        n_workers=n_workers,
        target_claims=target,
        num_false=draw(st.integers(min_value=1, max_value=3)),
        participation_decay=draw(st.floats(min_value=0.0, max_value=0.9)),
    )


class TestGenerateWorldProperties:
    @given(config=world_params(), seed=st.integers(min_value=0, max_value=999))
    @settings(max_examples=30)
    def test_structural_invariants(self, config, seed):
        world = generate_world(config, seed)
        assert world.n_tasks == config.n_tasks
        assert world.n_workers == config.n_workers
        for task in world.tasks:
            assert task.truth in task.domain
            assert len(task.domain) == config.num_false + 1
        for (worker_id, task_id), value in world.claims.items():
            assert value in world.task_by_id[task_id].domain

    @given(config=world_params(), seed=st.integers(min_value=0, max_value=999))
    @settings(max_examples=20)
    def test_determinism(self, config, seed):
        assert generate_world(config, seed).claims == generate_world(
            config, seed
        ).claims


class TestInjectCopiersProperties:
    @given(
        config=world_params(),
        seed=st.integers(min_value=0, max_value=999),
        copy_prob=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=30)
    def test_copier_invariants(self, config, seed, copy_prob):
        world = generate_world(config, seed)
        n_copiers = min(3, config.n_workers - 1)
        injected = inject_copiers(
            world, n_copiers, copy_prob=copy_prob, seed=seed + 1
        )
        copiers = {w.worker_id for w in injected.workers if w.is_copier}
        assert len(copiers) == n_copiers
        # No-loop dependence: sources are never copiers.
        for worker in injected.workers:
            for source in worker.sources:
                assert source not in copiers
        # Claims stay within domains; non-copier claims untouched.
        for (worker_id, task_id), value in injected.claims.items():
            assert value in injected.task_by_id[task_id].domain
            if worker_id not in copiers:
                assert world.claims[(worker_id, task_id)] == value

    @given(config=world_params(), seed=st.integers(min_value=0, max_value=999))
    @settings(max_examples=20)
    def test_full_copy_means_subset_of_source_claims(self, config, seed):
        world = generate_world(config, seed)
        injected = inject_copiers(
            world,
            1,
            copy_prob=1.0,
            follow_prob=1.0,
            extra_prob=0.0,
            seed=seed + 1,
        )
        for worker in injected.workers:
            if not worker.is_copier:
                continue
            source_claims = injected.claims_by_worker[worker.sources[0]]
            for task_id, value in injected.claims_by_worker[
                worker.worker_id
            ].items():
                assert source_claims.get(task_id) == value
