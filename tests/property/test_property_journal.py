"""Property: recovery is all-or-nothing at EVERY truncation offset.

The write path can die after any byte.  This suite truncates a real
journal at **every byte offset of its final record** (exhaustively —
this is the satellite acceptance test, not a sample) and recovers from
the mutilated file.  The invariant is atomicity at record granularity:

- recovery never raises — a cut inside the final record is always a
  tolerated torn tail;
- the recovered campaign is in one of exactly two states: the final
  record fully applied (only when every one of its bytes survived) or
  dropped entirely — **never** a half-applied batch;
- on top of that, a Hypothesis sweep truncates at arbitrary record
  boundaries of larger random journals and checks replay equals the
  surviving prefix.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.streaming import CampaignStore, ClaimBatch, FaultInjector
from repro.streaming.faults import set_injector
from repro.streaming.journal import journal_path, read_journal
from repro.types import Task, WorkerProfile


@pytest.fixture(autouse=True)
def _inert_injector():
    previous = set_injector(FaultInjector())
    yield
    set_injector(previous)


def _batch(i: int, value: str = "a") -> ClaimBatch:
    return ClaimBatch(
        claims={(f"w{i}", f"t{i}"): value},
        tasks=(Task(task_id=f"t{i}", domain=("a", "b")),),
        workers=(WorkerProfile(worker_id=f"w{i}"),),
    )


def _build_journal(tmp_path, n_batches: int):
    wal = tmp_path / "wal"
    store = CampaignStore(journal_dir=wal)
    store.create("c")
    for seq in range(1, n_batches + 1):
        store.ingest("c", _batch(seq), seq=seq)
    store.close()
    return wal, journal_path(wal, "c")


class TestEveryTruncationOffset:
    def test_recovery_is_atomic_at_every_cut_of_the_final_record(
        self, tmp_path
    ):
        wal, path = _build_journal(tmp_path, n_batches=2)
        pristine = path.read_bytes()
        scan = read_journal(path)
        assert len(scan.records) == 3  # create + 2 batches
        # Byte offset where the final (seq 2) record begins.
        final_start = pristine.rfind(b"\n", 0, len(pristine) - 1) + 1

        for cut in range(final_start, len(pristine) + 1):
            path.write_bytes(pristine[:cut])
            # Never crashes; the cut is always torn-or-complete.
            truncated = read_journal(path)
            intact = cut == len(pristine)
            store = CampaignStore(journal_dir=wal)
            campaign = store.get("c")
            if intact:
                assert not truncated.torn
                assert campaign.applied_seq == 2
                assert "t2" in store.truths("c")["truths"]
            else:
                assert campaign.applied_seq == 1, f"cut at byte {cut}"
                assert "t2" not in store.truths("c")["truths"]
                # And never a half-applied record: seq 1 is whole.
                assert store.truths("c")["truths"].get("t1") is not None
            store.close()

    def test_cut_inside_an_earlier_record_is_corruption(self, tmp_path):
        # Sanity check of the counterpart rule: damage NOT at the tail
        # does not silently drop acknowledged records.
        wal, path = _build_journal(tmp_path, n_batches=2)
        pristine = path.read_bytes()
        first_end = pristine.find(b"\n") + 1
        # Remove one byte INSIDE the second record, keeping the third.
        vandalized = pristine[: first_end + 10] + pristine[first_end + 11 :]
        path.write_bytes(vandalized)
        store = CampaignStore(journal_dir=wal)
        assert store.last_recovery[0]["status"] == "corrupt"
        assert "c" not in store
        store.close()


class TestRandomJournalPrefixes:
    @settings(max_examples=25, deadline=None, derandomize=True)
    @given(
        n_batches=st.integers(min_value=1, max_value=6),
        keep=st.integers(min_value=0, max_value=6),
        extra_garbage=st.binary(max_size=40),
    )
    def test_replay_equals_the_surviving_prefix(
        self, tmp_path_factory, n_batches, keep, extra_garbage
    ):
        keep = min(keep, n_batches)
        tmp_path = tmp_path_factory.mktemp("wal-prop")
        wal, path = _build_journal(tmp_path, n_batches)
        lines = path.read_bytes().splitlines(keepends=True)
        # Keep the create record + `keep` batches, then append garbage
        # that never forms a full valid line: a torn tail at most.
        mutilated = b"".join(lines[: keep + 1]) + extra_garbage.replace(b"\n", b"")
        path.write_bytes(mutilated)

        store = CampaignStore(journal_dir=wal)
        report = store.last_recovery[0]
        assert report["status"] == "recovered"
        assert report["batches"] == keep
        truths = store.truths("c")["truths"]
        assert {f"t{i}" for i in range(1, keep + 1)} <= set(truths)
        assert not any(
            f"t{i}" in truths for i in range(keep + 1, n_batches + 1)
        )
        store.close()
