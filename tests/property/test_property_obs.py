"""Bit-identity: instrumentation must never change a result.

The observability spine (DESIGN.md §13) is observation-only — metrics
and traces read values the computation already produced and feed
nothing back.  These tests pin that contract end to end: DATE (both
backends, incremental dependence included), the IMC2 mechanism, and the
instance harness produce *exactly* the same outputs with the registry
enabled and a trace active as they do with telemetry off entirely.
"""

from __future__ import annotations

import pytest

from repro import DATE, DateConfig
from repro.mechanism.imc2 import IMC2
from repro.obs import MetricsRegistry, set_registry, trace_run
from repro.simulation.runner import run_instances


@pytest.fixture
def telemetry_off():
    registry = MetricsRegistry(enabled=False)
    previous = set_registry(registry)
    yield registry
    set_registry(previous)


@pytest.fixture
def telemetry_on():
    registry = MetricsRegistry(enabled=True)
    previous = set_registry(registry)
    yield registry
    set_registry(previous)


def _truth_snapshot(result):
    return (
        dict(result.truths),
        dict(result.confidence),
        dict(result.worker_accuracy),
        result.iterations,
        result.converged,
    )


def _run_date(dataset, **config_kwargs):
    result = DATE(DateConfig(**config_kwargs)).run(dataset)
    return _truth_snapshot(result)


def _run_imc2(dataset):
    outcome = IMC2(DateConfig(), requirement_cap=0.7).run(dataset)
    auction = outcome.auction
    return (
        tuple(auction.winner_ids),
        dict(auction.payments),
        auction.social_cost,
        auction.total_payment,
        _truth_snapshot(outcome.truth),
    )


@pytest.mark.parametrize("backend", ["vectorized", "reference"])
def test_date_identical_with_registry_and_trace(
    qlf_small, tmp_path, backend, telemetry_off
):
    baseline = _run_date(qlf_small, backend=backend)
    registry = MetricsRegistry(enabled=True)
    set_registry(registry)
    with trace_run({"test": "date", "backend": backend}, directory=tmp_path):
        instrumented = _run_date(qlf_small, backend=backend)
    assert instrumented == baseline
    # The run really was observed, not silently skipped.
    names = {family.name for family in registry.collect()}
    assert "date_runs_total" in names
    assert "date_iteration_seconds" in names


def test_date_stable_dependence_identical(qlf_small, tmp_path, telemetry_off):
    kwargs = {"backend": "vectorized", "stable_dependence": True}
    baseline = _run_date(qlf_small, **kwargs)
    set_registry(MetricsRegistry(enabled=True))
    with trace_run({"test": "stable"}, directory=tmp_path):
        instrumented = _run_date(qlf_small, **kwargs)
    assert instrumented == baseline


def test_trace_alone_changes_nothing(qlf_small, tmp_path, telemetry_off):
    # Tracing without the registry (the `repro run --trace` default).
    baseline = _run_date(qlf_small, backend="vectorized")
    with trace_run({"test": "trace-only"}, directory=tmp_path) as writer:
        traced = _run_date(qlf_small, backend="vectorized")
    assert traced == baseline
    events = writer.path.read_text().splitlines()
    assert len(events) >= 3  # run_start, date events, run_end


def test_imc2_identical_with_registry_and_trace(
    qlf_small, tmp_path, telemetry_off
):
    baseline = _run_imc2(qlf_small)
    set_registry(MetricsRegistry(enabled=True))
    with trace_run({"test": "imc2"}, directory=tmp_path):
        instrumented = _run_imc2(qlf_small)
    assert instrumented == baseline


def _metric_row(k: int) -> dict[str, float]:
    return {"value": k * 1.25, "squared": float(k * k)}


def test_run_instances_identical_under_telemetry(tmp_path, telemetry_off):
    baseline = run_instances(4, _metric_row)
    set_registry(MetricsRegistry(enabled=True))
    with trace_run({"test": "harness"}, directory=tmp_path):
        instrumented = run_instances(4, _metric_row)
    assert instrumented.rows == baseline.rows


def test_parallel_map_identical_under_telemetry(telemetry_on):
    from repro.simulation.executor import parallel_map

    assert parallel_map(_metric_row, range(6), parallel=2) == [
        _metric_row(k) for k in range(6)
    ]
    assert telemetry_on.counter(
        "executor_items_total", labels={"mode": "pooled"}
    ).value == 6.0
