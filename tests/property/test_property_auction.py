"""Property-based tests on the auction layer (hypothesis).

Random feasible SOAC instances must always satisfy the mechanism's
structural guarantees: full coverage, individual rationality under
truthful bidding, monotone selection, and greedy ≥ optimal.
"""

from __future__ import annotations

import math

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro import ReverseAuction, SOACInstance, solve_optimal
from repro.auction.reverse_auction import greedy_cover
from repro.baselines import GreedyAccuracy, GreedyBid


@st.composite
def soac_instances(draw, max_workers=8, max_tasks=4):
    """Random instances, made feasible by capping requirements."""
    n = draw(st.integers(min_value=2, max_value=max_workers))
    m = draw(st.integers(min_value=1, max_value=max_tasks))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = np.random.default_rng(seed)
    accuracy = np.where(
        rng.random((n, m)) < 0.7, rng.uniform(0.1, 0.95, (n, m)), 0.0
    )
    # Ensure every task has at least one capable worker.
    for j in range(m):
        if accuracy[:, j].sum() == 0.0:
            accuracy[rng.integers(n), j] = rng.uniform(0.3, 0.9)
    requirements = rng.uniform(0.2, 2.0, m)
    requirements = np.minimum(requirements, 0.9 * accuracy.sum(axis=0))
    bids = rng.uniform(0.5, 9.0, n)
    return SOACInstance(
        worker_ids=tuple(f"w{i}" for i in range(n)),
        task_ids=tuple(f"t{j}" for j in range(m)),
        requirements=requirements,
        accuracy=accuracy,
        bids=bids,
        costs=bids.copy(),
        task_values=np.full(m, 5.0),
    )


class TestGreedyCoverProperties:
    @given(instance=soac_instances())
    @settings(max_examples=50)
    def test_selection_covers_and_never_repeats(self, instance):
        selection = greedy_cover(instance)
        workers = [w for w, _ in selection]
        assert len(set(workers)) == len(workers)
        assert instance.is_covering(workers)

    @given(instance=soac_instances())
    @settings(max_examples=50)
    def test_every_selected_worker_was_useful(self, instance):
        for worker, residual in greedy_cover(instance):
            marginal = float(
                np.minimum(residual, instance.accuracy[worker]).sum()
            )
            assert marginal > 0.0


class TestAuctionProperties:
    @given(instance=soac_instances())
    @settings(max_examples=40)
    def test_individual_rationality_under_truthful_bids(self, instance):
        outcome = ReverseAuction().run(instance)
        cost_by_id = dict(zip(instance.worker_ids, instance.costs))
        for winner, payment in outcome.payments.items():
            assert payment >= cost_by_id[winner] - 1e-9

    @given(instance=soac_instances())
    @settings(max_examples=40)
    def test_social_cost_matches_selection(self, instance):
        outcome = ReverseAuction().run(instance)
        assert outcome.social_cost == float(
            sum(instance.costs[i] for i in outcome.winner_indexes)
        )

    @given(instance=soac_instances(), factor=st.floats(min_value=0.1, max_value=0.9))
    @settings(max_examples=40)
    def test_selection_monotone_in_bid(self, instance, factor):
        """A winner that lowers its bid must keep winning (Theorem 2)."""
        outcome = ReverseAuction().run(instance)
        assume(outcome.winner_ids)
        winner = outcome.winner_ids[0]
        index = instance.worker_ids.index(winner)
        lowered = instance.with_bid(index, float(instance.bids[index]) * factor)
        again = ReverseAuction().run(lowered)
        assert winner in again.payments

    @given(instance=soac_instances())
    @settings(max_examples=25)
    def test_greedy_at_least_optimal_and_bounded(self, instance):
        from repro.auction.properties import approximation_bound

        greedy = ReverseAuction().run(instance)
        optimal = solve_optimal(instance)
        assert greedy.social_cost >= optimal.social_cost - 1e-6
        if optimal.social_cost > 1e-9:
            ratio = greedy.social_cost / optimal.social_cost
            assert ratio <= approximation_bound(instance) + 1e-6

    @given(instance=soac_instances())
    @settings(max_examples=30)
    def test_all_auctions_cover(self, instance):
        """RA, GA and GB must each produce a covering winner set.

        Note: RA is *not* instance-wise dominant over GA/GB — greedy
        set cover can lose on individual instances (hypothesis found a
        3-worker counterexample) — so the Fig. 6 cost ordering is an
        average-case claim, asserted over seeds in the unit suite.  The
        per-instance guarantee RA has is the approximation bound,
        tested in test_greedy_at_least_optimal_and_bounded.
        """
        for algorithm in (ReverseAuction(), GreedyAccuracy(), GreedyBid()):
            outcome = algorithm.run(instance)
            assert instance.is_covering(outcome.winner_indexes)

    @given(instance=soac_instances())
    @settings(max_examples=30)
    def test_payments_finite_and_non_negative(self, instance):
        outcome = ReverseAuction().run(instance)
        for payment in outcome.payments.values():
            assert math.isfinite(payment)
            assert payment >= 0.0

    @given(instance=soac_instances())
    @settings(max_examples=30)
    def test_winner_lists_consistent(self, instance):
        outcome = ReverseAuction().run(instance)
        assert set(outcome.payments) == set(outcome.winner_ids)
        assert len(outcome.winner_ids) == len(set(outcome.winner_ids))
