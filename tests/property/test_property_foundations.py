"""Property-based tests on types, IO, similarity, and stats (hypothesis)."""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Dataset, Task, WorkerProfile
from repro.datasets import load_dataset, save_dataset
from repro.similarity import (
    levenshtein_distance,
    normalized_levenshtein,
    string_similarity,
)
from repro.simulation.stats import summarize

identifiers = st.text(
    alphabet=st.characters(whitelist_categories=("Lu", "Ll", "Nd")),
    min_size=1,
    max_size=8,
)

short_text = st.text(min_size=0, max_size=12)


@st.composite
def datasets(draw):
    m = draw(st.integers(min_value=1, max_value=4))
    n = draw(st.integers(min_value=1, max_value=4))
    values = draw(
        st.lists(identifiers, min_size=2, max_size=4, unique=True)
    )
    tasks = tuple(
        Task(task_id=f"t{j}", domain=tuple(values), truth=values[0])
        for j in range(m)
    )
    workers = tuple(
        WorkerProfile(
            worker_id=f"w{i}",
            cost=draw(st.floats(min_value=0.0, max_value=50.0)),
            reliability=draw(st.floats(min_value=0.0, max_value=1.0)),
        )
        for i in range(n)
    )
    claims = {}
    for i in range(n):
        for j in range(m):
            if draw(st.booleans()):
                claims[(f"w{i}", f"t{j}")] = draw(st.sampled_from(values))
    return Dataset(tasks=tasks, workers=workers, claims=claims)


class TestDatasetProperties:
    @given(dataset=datasets())
    @settings(max_examples=40)
    def test_views_are_consistent(self, dataset):
        by_task_total = sum(len(v) for v in dataset.claims_by_task.values())
        by_worker_total = sum(len(v) for v in dataset.claims_by_worker.values())
        assert by_task_total == by_worker_total == dataset.n_claims

    @given(dataset=datasets())
    @settings(max_examples=40)
    def test_value_groups_partition_claimants(self, dataset):
        for task in dataset.tasks:
            groups = dataset.value_groups(task.task_id)
            members = [w for group in groups.values() for w in group]
            assert sorted(members) == sorted(dataset.claims_by_task[task.task_id])

    @given(dataset=datasets())
    @settings(max_examples=30)
    def test_subset_is_idempotent_on_full_sets(self, dataset):
        full = dataset.subset()
        assert full.claims == dataset.claims
        assert full.tasks == dataset.tasks

    @given(dataset=datasets())
    @settings(max_examples=20)
    def test_csv_round_trip(self, dataset, tmp_path_factory):
        directory = tmp_path_factory.mktemp("ds")
        save_dataset(dataset, directory)
        loaded = load_dataset(directory)
        assert loaded.claims == dataset.claims
        assert loaded.tasks == dataset.tasks
        assert loaded.workers == dataset.workers


class TestLevenshteinProperties:
    @given(a=short_text, b=short_text)
    @settings(max_examples=100)
    def test_symmetry(self, a, b):
        assert levenshtein_distance(a, b) == levenshtein_distance(b, a)

    @given(a=short_text, b=short_text)
    @settings(max_examples=100)
    def test_identity_of_indiscernibles(self, a, b):
        distance = levenshtein_distance(a, b)
        assert (distance == 0) == (a == b)

    @given(a=short_text, b=short_text, c=short_text)
    @settings(max_examples=60)
    def test_triangle_inequality(self, a, b, c):
        assert levenshtein_distance(a, c) <= levenshtein_distance(
            a, b
        ) + levenshtein_distance(b, c)

    @given(a=short_text, b=short_text)
    @settings(max_examples=100)
    def test_bounded_by_longer_string(self, a, b):
        assert levenshtein_distance(a, b) <= max(len(a), len(b))

    @given(a=short_text, b=short_text)
    @settings(max_examples=100)
    def test_normalized_in_unit_interval(self, a, b):
        similarity = normalized_levenshtein(a, b)
        assert 0.0 <= similarity <= 1.0


class TestStringSimilarityProperties:
    @given(
        a=short_text.filter(bool),
        b=short_text.filter(bool),
        measure=st.sampled_from(
            ["cosine", "euclidean", "pearson", "asymmetric", "levenshtein"]
        ),
    )
    @settings(max_examples=60)
    def test_range_and_identity(self, a, b, measure):
        sim = string_similarity(measure)
        assert sim(a, a) == 1.0
        assert 0.0 <= sim(a, b) <= 1.0


class TestStatsProperties:
    @given(
        values=st.lists(
            st.floats(min_value=-1e6, max_value=1e6),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=80)
    def test_summary_invariants(self, values):
        stats = summarize(values)
        # Allow a few ulps of slack: the mean of identical floats can
        # differ from them in the last bit.
        slack = 1e-9 * max(abs(stats.minimum), abs(stats.maximum), 1e-300)
        assert stats.minimum - slack <= stats.mean <= stats.maximum + slack
        assert stats.ci95_low - slack <= stats.mean <= stats.ci95_high + slack
        assert stats.std >= 0.0
        assert stats.n == len(values)
        assert math.isfinite(stats.mean)
