"""Property-based tests on the truth-discovery core (hypothesis).

Strategy: generate arbitrary small claim matrices (workers × tasks with
random participation and values) and assert the probabilistic
invariants that every step of DATE must uphold regardless of input.
"""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import DATE, Dataset, DateConfig, Task, WorkerProfile
from repro.core import DatasetIndex
from repro.core.accuracy import (
    discounted_value_posteriors,
    update_accuracy_matrix,
    value_posteriors,
)
from repro.core.dependence import compute_pairwise_dependence
from repro.core.independence import independence_probabilities
from repro.core.support import select_truths, support_counts

VALUES = ("A", "B", "C", "D")


@st.composite
def claim_matrices(draw, max_workers=6, max_tasks=5):
    """A random dataset: arbitrary participation and value choices."""
    n = draw(st.integers(min_value=2, max_value=max_workers))
    m = draw(st.integers(min_value=1, max_value=max_tasks))
    tasks = tuple(
        Task(task_id=f"t{j}", domain=VALUES, truth="A") for j in range(m)
    )
    workers = tuple(WorkerProfile(worker_id=f"w{i}") for i in range(n))
    claims = {}
    for i in range(n):
        for j in range(m):
            if draw(st.booleans()):
                value = draw(st.sampled_from(VALUES))
                claims[(f"w{i}", f"t{j}")] = value
    # Guarantee at least one claim so the dataset is non-trivial.
    if not claims:
        claims[("w0", "t0")] = draw(st.sampled_from(VALUES))
    return Dataset(tasks=tasks, workers=workers, claims=claims)


@st.composite
def date_params(draw):
    return {
        "copy_prob_r": draw(st.floats(min_value=0.05, max_value=0.95)),
        "prior_alpha": draw(st.floats(min_value=0.05, max_value=0.95)),
    }


class TestDependenceInvariants:
    @given(dataset=claim_matrices(), params=date_params())
    @settings(max_examples=40)
    def test_posteriors_are_probabilities(self, dataset, params):
        index = DatasetIndex(dataset)
        accuracy = index.initial_accuracy_matrix(0.5)
        posteriors = compute_pairwise_dependence(
            index, index.majority_vote(), accuracy, **params
        )
        for post in posteriors.values():
            assert 0.0 <= post.p_a_to_b <= 1.0
            assert 0.0 <= post.p_b_to_a <= 1.0
            total = post.p_a_to_b + post.p_b_to_a + post.p_independent
            assert math.isclose(total, 1.0, abs_tol=1e-9)

    @given(dataset=claim_matrices(), params=date_params())
    @settings(max_examples=40)
    def test_posteriors_finite(self, dataset, params):
        index = DatasetIndex(dataset)
        accuracy = index.initial_accuracy_matrix(0.9)
        posteriors = compute_pairwise_dependence(
            index, index.majority_vote(), accuracy, **params
        )
        for post in posteriors.values():
            assert math.isfinite(post.p_a_to_b)
            assert math.isfinite(post.p_b_to_a)


class TestIndependenceInvariants:
    @given(dataset=claim_matrices(), params=date_params())
    @settings(max_examples=40)
    def test_scores_in_unit_interval_and_anchored(self, dataset, params):
        index = DatasetIndex(dataset)
        accuracy = index.initial_accuracy_matrix(0.5)
        deps = compute_pairwise_dependence(
            index, index.majority_vote(), accuracy, **params
        )
        table = independence_probabilities(
            index, deps, copy_prob_r=params["copy_prob_r"]
        )
        for j in range(index.n_tasks):
            for value, scores in table[j].items():
                assert set(scores) == set(index.value_groups[j][value])
                for score in scores.values():
                    assert 0.0 < score <= 1.0
                # The first worker in every group is undiscounted.
                assert math.isclose(max(scores.values()), 1.0)


class TestPosteriorInvariants:
    @given(dataset=claim_matrices(), epsilon=st.floats(min_value=0.1, max_value=0.9))
    @settings(max_examples=40)
    def test_value_posteriors_normalized(self, dataset, epsilon):
        index = DatasetIndex(dataset)
        accuracy = index.initial_accuracy_matrix(epsilon)
        posteriors = value_posteriors(index, accuracy)
        for j, table in enumerate(posteriors):
            if index.value_groups[j]:
                assert math.isclose(sum(table.values()), 1.0, abs_tol=1e-9)
                for p in table.values():
                    assert 0.0 <= p <= 1.0

    @given(dataset=claim_matrices(), params=date_params())
    @settings(max_examples=30)
    def test_discounted_posteriors_normalized(self, dataset, params):
        index = DatasetIndex(dataset)
        accuracy = index.initial_accuracy_matrix(0.5)
        deps = compute_pairwise_dependence(
            index, index.majority_vote(), accuracy, **params
        )
        independence = independence_probabilities(
            index, deps, copy_prob_r=params["copy_prob_r"]
        )
        posteriors = discounted_value_posteriors(index, accuracy, independence)
        for j, table in enumerate(posteriors):
            if index.value_groups[j]:
                assert math.isclose(sum(table.values()), 1.0, abs_tol=1e-9)

    @given(dataset=claim_matrices())
    @settings(max_examples=30)
    def test_accuracy_matrix_bounds_and_sparsity(self, dataset):
        index = DatasetIndex(dataset)
        posteriors = value_posteriors(index, index.initial_accuracy_matrix(0.5))
        matrix = update_accuracy_matrix(index, posteriors)
        assert matrix.shape == (index.n_workers, index.n_tasks)
        for i in range(index.n_workers):
            for j in range(index.n_tasks):
                if j in index.claims_by_worker[i]:
                    assert 0.0 <= matrix[i, j] <= 1.0
                else:
                    assert matrix[i, j] == 0.0


class TestSupportInvariants:
    @given(dataset=claim_matrices(), params=date_params())
    @settings(max_examples=30)
    def test_support_non_negative_and_truths_observed(self, dataset, params):
        index = DatasetIndex(dataset)
        accuracy = index.initial_accuracy_matrix(0.5)
        deps = compute_pairwise_dependence(
            index, index.majority_vote(), accuracy, **params
        )
        independence = independence_probabilities(
            index, deps, copy_prob_r=params["copy_prob_r"]
        )
        support = support_counts(index, accuracy, independence)
        truths = select_truths(support)
        for j in range(index.n_tasks):
            for count in support[j].values():
                assert count >= 0.0
            if index.value_groups[j]:
                assert truths[j] in index.value_groups[j]
            else:
                assert truths[j] is None


class TestEndToEndInvariants:
    @given(dataset=claim_matrices(), params=date_params())
    @settings(max_examples=20)
    def test_date_always_terminates_with_valid_result(self, dataset, params):
        import warnings

        config = DateConfig(max_iterations=12, **params)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            result = DATE(config).run(dataset)
        assert result.iterations <= 12
        # Every estimated truth is a value someone actually claimed.
        for task_id, value in result.truths.items():
            observed = set(dataset.claims_by_task[task_id].values())
            assert value in observed
        # Accuracies are probabilities.
        for accuracy in result.worker_accuracy.values():
            assert 0.0 <= accuracy <= 1.0
