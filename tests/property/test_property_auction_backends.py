"""Backend equivalence of the auction engines (hypothesis).

The vectorized engine (:mod:`repro.auction.engine`) claims *exact*
equality with the scalar reference — winners, selection order,
payments, monopolists, bit for bit (DESIGN.md §10).  This suite holds
it to that claim over random instances, including the shapes most
likely to break prefix sharing:

- skewed (lognormal) bids, so selection order is far from index order;
- near-singular requirements (at 99.9% of available accuracy), so
  excluding one winner frequently strands coverage → monopolists;
- sparse accuracy rows, so the incremental column updates carry most
  of the selection;
- infeasible instances, where both backends must raise identically.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import InfeasibleCoverageError, ReverseAuction, SOACInstance
from repro.auction.engine import vectorized_cover
from repro.auction.reverse_auction import greedy_cover


def build_instance(
    seed: int,
    *,
    max_workers: int = 20,
    max_tasks: int = 8,
    requirement_pressure: float = 0.9,
    bid_spread: float = 0.6,
    ensure_coverable: bool = True,
) -> SOACInstance:
    """One random instance, deterministically derived from ``seed``."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(2, max_workers + 1))
    m = int(rng.integers(1, max_tasks + 1))
    density = rng.uniform(0.15, 0.85)
    accuracy = np.where(
        rng.random((n, m)) < density, rng.uniform(0.05, 1.0, (n, m)), 0.0
    )
    if ensure_coverable:
        for j in range(m):
            if accuracy[:, j].sum() == 0.0:
                accuracy[rng.integers(n), j] = rng.uniform(0.3, 0.9)
    requirements = np.minimum(
        rng.uniform(0.1, 3.0, m), requirement_pressure * accuracy.sum(axis=0)
    )
    bids = rng.lognormal(0.5, bid_spread, n)
    return SOACInstance(
        worker_ids=tuple(f"w{i}" for i in range(n)),
        task_ids=tuple(f"t{j}" for j in range(m)),
        requirements=requirements,
        accuracy=accuracy,
        bids=bids,
        costs=bids.copy(),
        task_values=np.full(m, 5.0),
    )


def assert_outcomes_identical(instance: SOACInstance, **auction_kwargs) -> None:
    """Both backends agree exactly, or both raise the same infeasibility."""
    try:
        reference = ReverseAuction(backend="reference", **auction_kwargs).run(
            instance
        )
    except InfeasibleCoverageError as error:
        with pytest.raises(InfeasibleCoverageError) as caught:
            ReverseAuction(backend="vectorized", **auction_kwargs).run(instance)
        assert caught.value.args == error.args
        return
    vectorized = ReverseAuction(backend="vectorized", **auction_kwargs).run(
        instance
    )
    assert vectorized.winner_ids == reference.winner_ids
    assert vectorized.winner_indexes == reference.winner_indexes
    assert vectorized.monopolists == reference.monopolists
    assert set(vectorized.payments) == set(reference.payments)
    for worker_id, payment in reference.payments.items():
        assert vectorized.payments[worker_id] == payment, worker_id
    assert vectorized.social_cost == reference.social_cost
    assert vectorized.total_payment == reference.total_payment


class TestRandomInstances:
    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=60)
    def test_outcomes_identical(self, seed):
        assert_outcomes_identical(build_instance(seed))

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40)
    def test_skewed_bids(self, seed):
        """Heavy-tailed bids reorder selection far from index order."""
        assert_outcomes_identical(build_instance(seed, bid_spread=2.0))

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40)
    def test_near_singular_requirements(self, seed):
        """Requirements at 99.9% of availability breed monopolists."""
        instance = build_instance(seed, requirement_pressure=0.999)
        assert_outcomes_identical(instance)
        outcome = ReverseAuction().run(instance)
        # The scenario exists to exercise the monopolist path; when it
        # fires, monopolists must be paid factor * bid on both engines.
        assert_outcomes_identical(instance, monopoly_payment_factor=1.5)
        for worker_id in outcome.monopolists:
            index = instance.worker_ids.index(worker_id)
            assert outcome.payments[worker_id] == pytest.approx(
                float(instance.bids[index])
            )

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40)
    def test_selection_traces_identical(self, seed):
        """vectorized_cover is a drop-in for greedy_cover, residuals included."""
        instance = build_instance(seed)
        scalar = greedy_cover(instance)
        batched = vectorized_cover(instance)
        assert [w for w, _ in scalar] == [w for w, _ in batched]
        for (_, res_scalar), (_, res_batched) in zip(scalar, batched):
            assert np.array_equal(res_scalar, res_batched)

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        exclude=st.integers(min_value=0, max_value=3),
    )
    @settings(max_examples=30)
    def test_excluded_traces_identical(self, seed, exclude):
        """Exclusion (the payment rerun's W \\ {i}) matches too."""
        instance = build_instance(seed)
        exclude = exclude % instance.n_workers
        try:
            scalar = greedy_cover(instance, exclude=exclude)
        except InfeasibleCoverageError as error:
            with pytest.raises(InfeasibleCoverageError) as caught:
                vectorized_cover(instance, exclude=exclude)
            assert caught.value.args == error.args
            return
        batched = vectorized_cover(instance, exclude=exclude)
        assert [w for w, _ in scalar] == [w for w, _ in batched]
        for (_, res_scalar), (_, res_batched) in zip(scalar, batched):
            assert np.array_equal(res_scalar, res_batched)


class TestEdgeCases:
    def test_monopolist_instance(self):
        """Only w0 covers t1: w0 is a monopolist on both backends."""
        instance = SOACInstance(
            worker_ids=("w0", "w1"),
            task_ids=("t0", "t1"),
            requirements=np.array([1.0, 1.0]),
            accuracy=np.array([[1.0, 1.0], [1.0, 0.0]]),
            bids=np.array([2.0, 1.0]),
            costs=np.array([2.0, 1.0]),
            task_values=np.full(2, 5.0),
        )
        assert_outcomes_identical(instance, monopoly_payment_factor=2.0)
        outcome = ReverseAuction(monopoly_payment_factor=2.0).run(instance)
        assert "w0" in outcome.monopolists
        assert outcome.payments["w0"] == pytest.approx(4.0)

    def test_infeasible_instance(self):
        """Uncoverable requirements raise identically on both backends."""
        instance = build_instance(7, ensure_coverable=False)
        bumped = SOACInstance(
            worker_ids=instance.worker_ids,
            task_ids=instance.task_ids,
            requirements=instance.accuracy.sum(axis=0) + 1.0,
            accuracy=instance.accuracy,
            bids=instance.bids,
            costs=instance.costs,
            task_values=instance.task_values,
        )
        assert_outcomes_identical(bumped)

    def test_zero_requirements(self):
        instance = SOACInstance(
            worker_ids=("w0", "w1"),
            task_ids=("t0",),
            requirements=np.array([0.0]),
            accuracy=np.array([[0.5], [0.7]]),
            bids=np.array([1.0, 2.0]),
            costs=np.array([1.0, 2.0]),
            task_values=np.array([5.0]),
        )
        assert_outcomes_identical(instance)
        outcome = ReverseAuction().run(instance)
        assert outcome.winner_ids == ()

    def test_single_worker_fleet(self):
        """One worker covering everything is a monopolist by definition."""
        instance = SOACInstance(
            worker_ids=("w0",),
            task_ids=("t0", "t1"),
            requirements=np.array([0.5, 0.5]),
            accuracy=np.array([[0.9, 0.9]]),
            bids=np.array([3.0]),
            costs=np.array([3.0]),
            task_values=np.full(2, 5.0),
        )
        assert_outcomes_identical(instance)
        outcome = ReverseAuction().run(instance)
        assert outcome.monopolists == ("w0",)
