"""Property tests: the vectorized backend matches the scalar reference.

Every algorithm that honours ``DateConfig.backend`` is run twice on
randomized synthetic datasets — including copier-heavy worlds (workers
that duplicate a source's claims verbatim) and sparse-coverage worlds —
and must agree with the reference transcription:

- estimated truths *exactly* (same argmax, same tie-breaks),
- accuracy matrices and dependence posteriors within 1e-9,
- confidence and support tables within 1e-9.

``derandomize=True`` keeps the corpus stable across runs: the gate is
an acceptance criterion, not a fuzzing lottery.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import DATE, Dataset, DateConfig, Task, TruthDiscoveryResult, WorkerProfile
from repro.baselines import EnumerateDependence, NoCopier
from repro.core import DatasetIndex
from repro.core.falsedist import EmpiricalFalseValues, ZipfFalseValues

VALUES = ("A", "B", "C", "D")

TOL = 1e-9


@st.composite
def claim_matrices(draw, max_workers=6, max_tasks=5, participation=None):
    """A random dataset: arbitrary participation and value choices."""
    n = draw(st.integers(min_value=2, max_value=max_workers))
    m = draw(st.integers(min_value=1, max_value=max_tasks))
    tasks = tuple(Task(task_id=f"t{j}", domain=VALUES, truth="A") for j in range(m))
    workers = tuple(WorkerProfile(worker_id=f"w{i}") for i in range(n))
    claims = {}
    for i in range(n):
        for j in range(m):
            answers = (
                draw(st.booleans())
                if participation is None
                else draw(st.floats(0, 1)) < participation
            )
            if answers:
                claims[(f"w{i}", f"t{j}")] = draw(st.sampled_from(VALUES))
    if not claims:
        claims[("w0", "t0")] = draw(st.sampled_from(VALUES))
    return Dataset(tasks=tasks, workers=workers, claims=claims)


@st.composite
def copier_heavy_matrices(draw, max_workers=5, max_tasks=5, max_copiers=3):
    """Random datasets plus verbatim copiers of one source worker."""
    base = draw(claim_matrices(max_workers=max_workers, max_tasks=max_tasks))
    n_copiers = draw(st.integers(min_value=1, max_value=max_copiers))
    source = draw(st.sampled_from([w.worker_id for w in base.workers]))
    source_claims = {
        task_id: value
        for (worker_id, task_id), value in base.claims.items()
        if worker_id == source
    }
    workers = list(base.workers)
    claims = dict(base.claims)
    for c in range(n_copiers):
        copier_id = f"c{c}"
        workers.append(WorkerProfile(worker_id=copier_id))
        for task_id, value in source_claims.items():
            claims[(copier_id, task_id)] = value
    return Dataset(tasks=base.tasks, workers=tuple(workers), claims=claims)


@st.composite
def sparse_matrices(draw):
    """Low-participation worlds: most (worker, task) cells are empty."""
    return draw(
        claim_matrices(max_workers=8, max_tasks=8, participation=0.25)
    )


@st.composite
def config_variants(draw):
    """A spread of DateConfig knobs both backends must agree under."""
    return dict(
        copy_prob_r=draw(st.floats(min_value=0.05, max_value=0.95)),
        prior_alpha=draw(st.floats(min_value=0.05, max_value=0.95)),
        granularity=draw(st.sampled_from(["worker", "task"])),
        ordering=draw(st.sampled_from(["dependent_first", "independent_first"])),
        discount_mode=draw(st.sampled_from(["directed", "total"])),
        discounted_posterior=draw(st.booleans()),
        max_iterations=draw(st.integers(min_value=1, max_value=25)),
    )


def assert_equivalent(ref, vec):
    """The full result-bundle comparison both backends must satisfy."""
    assert ref.truths == vec.truths
    assert ref.iterations == vec.iterations
    assert ref.converged == vec.converged
    np.testing.assert_allclose(
        ref.accuracy_matrix, vec.accuracy_matrix, atol=TOL, rtol=0
    )
    assert set(ref.dependence) == set(vec.dependence)
    for pair, post in ref.dependence.items():
        other = vec.dependence[pair]
        assert abs(post.p_a_to_b - other.p_a_to_b) <= TOL
        assert abs(post.p_b_to_a - other.p_b_to_a) <= TOL
    assert set(ref.confidence) == set(vec.confidence)
    for task_id, value in ref.confidence.items():
        assert abs(value - vec.confidence[task_id]) <= TOL
    assert set(ref.support) == set(vec.support)
    for task_id, counts in ref.support.items():
        assert set(counts) == set(vec.support[task_id])
        for v, count in counts.items():
            assert abs(count - vec.support[task_id][v]) <= TOL
    assert ref.worker_accuracy.keys() == vec.worker_accuracy.keys()
    for worker_id, acc in ref.worker_accuracy.items():
        assert abs(acc - vec.worker_accuracy[worker_id]) <= TOL


def run_both(algorithm_cls, dataset, **config_kwargs):
    index = DatasetIndex(dataset)
    ref = algorithm_cls(
        DateConfig(backend="reference", **config_kwargs)
    ).run(dataset, index=index)
    vec = algorithm_cls(
        DateConfig(backend="vectorized", **config_kwargs)
    ).run(dataset, index=index)
    return ref, vec


class TestDateBackendEquivalence:
    @given(dataset=claim_matrices(), params=config_variants())
    @settings(max_examples=60, derandomize=True)
    def test_random_datasets(self, dataset, params):
        assert_equivalent(*run_both(DATE, dataset, **params))

    @given(dataset=copier_heavy_matrices(), params=config_variants())
    @settings(max_examples=60, derandomize=True)
    def test_copier_heavy_datasets(self, dataset, params):
        assert_equivalent(*run_both(DATE, dataset, **params))

    @given(dataset=sparse_matrices(), params=config_variants())
    @settings(max_examples=40, derandomize=True)
    def test_sparse_coverage_datasets(self, dataset, params):
        assert_equivalent(*run_both(DATE, dataset, **params))

    @given(dataset=claim_matrices())
    @settings(max_examples=25, derandomize=True)
    def test_zipf_false_values(self, dataset):
        index = DatasetIndex(dataset)
        ref = DATE(
            DateConfig(backend="reference", false_values=ZipfFalseValues())
        ).run(dataset, index=index)
        vec = DATE(
            DateConfig(backend="vectorized", false_values=ZipfFalseValues())
        ).run(dataset, index=index)
        assert_equivalent(ref, vec)

    @given(dataset=claim_matrices())
    @settings(max_examples=25, derandomize=True)
    def test_empirical_false_values_undiscounted(self, dataset):
        # discounted_posterior=False exercises the general (non
        # candidate-free) posterior kernel.
        index = DatasetIndex(dataset)
        ref = DATE(
            DateConfig(
                backend="reference",
                false_values=EmpiricalFalseValues(),
                discounted_posterior=False,
            )
        ).run(dataset, index=index)
        vec = DATE(
            DateConfig(
                backend="vectorized",
                false_values=EmpiricalFalseValues(),
                discounted_posterior=False,
            )
        ).run(dataset, index=index)
        assert_equivalent(ref, vec)

    @given(dataset=claim_matrices(), params=config_variants())
    @settings(max_examples=30, derandomize=True)
    def test_similarity_adjustment(self, dataset, params):
        def similarity(a: str, b: str) -> float:
            return 0.5 if (a, b) in (("A", "B"), ("B", "A")) else 0.0

        params = dict(params, similarity=similarity, similarity_weight=0.3)
        assert_equivalent(*run_both(DATE, dataset, **params))


class TestBaselineBackendEquivalence:
    @given(dataset=copier_heavy_matrices(), params=config_variants())
    @settings(max_examples=40, derandomize=True)
    def test_no_copier(self, dataset, params):
        assert_equivalent(*run_both(NoCopier, dataset, **params))

    @given(dataset=copier_heavy_matrices(), params=config_variants())
    @settings(max_examples=30, derandomize=True)
    def test_enumerate_dependence(self, dataset, params):
        assert_equivalent(*run_both(EnumerateDependence, dataset, **params))


def snapshot_result(
    truths: dict[str, str] | None = None,
    worker_accuracy: dict[str, float] | None = None,
) -> TruthDiscoveryResult:
    """A minimal warm-start carrier (what streaming snapshots provide)."""
    return TruthDiscoveryResult(
        truths=dict(truths or {}),
        accuracy_matrix=np.zeros((0, 0)),
        worker_accuracy=dict(worker_accuracy or {}),
        confidence={},
        support={},
        dependence={},
        iterations=0,
        converged=True,
        method="snapshot",
    )


class TestWarmStartEquivalence:
    @given(
        dataset=claim_matrices(),
        params=config_variants(),
        seed_params=config_variants(),
    )
    @settings(max_examples=25, derandomize=True)
    def test_warm_started_runs_agree(self, dataset, params, seed_params):
        index = DatasetIndex(dataset)
        warm = DATE(DateConfig(**seed_params)).run(dataset, index=index)
        ref = DATE(DateConfig(backend="reference", **params)).run(
            dataset, index=index, warm_start=warm
        )
        vec = DATE(DateConfig(backend="vectorized", **params)).run(
            dataset, index=index, warm_start=warm
        )
        assert_equivalent(ref, vec)

    @given(dataset=claim_matrices(), params=config_variants())
    @settings(max_examples=25, derandomize=True)
    def test_empty_warm_result_is_cold_start(self, dataset, params):
        """An empty warm result must be indistinguishable from no warm
        start on both backends (nothing to carry over)."""
        index = DatasetIndex(dataset)
        empty = snapshot_result()
        for backend in ("reference", "vectorized"):
            config = DateConfig(backend=backend, **params)
            cold = DATE(config).run(dataset, index=index)
            warm = DATE(config).run(dataset, index=index, warm_start=empty)
            assert_equivalent(cold, warm)

    @given(dataset=claim_matrices(), params=config_variants())
    @settings(max_examples=25, derandomize=True)
    def test_warm_result_over_unknown_tasks_only(self, dataset, params):
        """Warm state naming only foreign tasks/workers falls back to
        cold defaults everywhere — on both backends, equivalently."""
        index = DatasetIndex(dataset)
        foreign = snapshot_result(
            truths={"ghost-task-1": "A", "ghost-task-2": "Z"},
            worker_accuracy={"ghost-worker": 0.95},
        )
        results = {}
        for backend in ("reference", "vectorized"):
            config = DateConfig(backend=backend, **params)
            cold = DATE(config).run(dataset, index=index)
            warm = DATE(config).run(dataset, index=index, warm_start=foreign)
            assert_equivalent(cold, warm)
            results[backend] = warm
        assert_equivalent(results["reference"], results["vectorized"])

    @given(dataset=claim_matrices(), params=config_variants())
    @settings(max_examples=25, derandomize=True)
    def test_partial_snapshot_warm_start_agrees(self, dataset, params):
        """Snapshot-style warm state (truths for half the tasks, a few
        reputations, including values a task never observed) produces
        backend-identical results."""
        truths = {
            task.task_id: ("A" if i % 2 == 0 else "D")
            for i, task in enumerate(dataset.tasks[: max(1, len(dataset.tasks) // 2)])
        }
        reputations = {
            worker.worker_id: 0.25 + 0.5 * (i % 3) / 2
            for i, worker in enumerate(dataset.workers[:3])
        }
        warm = snapshot_result(truths, reputations)
        index = DatasetIndex(dataset)
        ref = DATE(DateConfig(backend="reference", **params)).run(
            dataset, index=index, warm_start=warm
        )
        vec = DATE(DateConfig(backend="vectorized", **params)).run(
            dataset, index=index, warm_start=warm
        )
        assert_equivalent(ref, vec)
