"""Property tests: streaming ingestion is equivalent to batch rebuilds.

Random campaigns are cut into random batch sequences (claims scattered
across batches, tasks published with their first claim, workers
registered up front) and replayed through the incremental machinery.
Two invariants are pinned:

- **Index equivalence** — a `DatasetIndex` grown through
  `extended()` matches a cold `DatasetIndex(dataset)` structure for
  structure, claim arrays and pair tables included.
- **Estimate equivalence** — `OnlineDATE` over the batch stream,
  after its final full refresh, matches the cold `DATE().run` result
  exactly (same truths and iterations, numerics <= 1e-9), on both
  backends.

``derandomize=True`` keeps the corpus stable: this is an acceptance
gate, not a fuzzing lottery.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import DATE, Dataset, DateConfig, Task, WorkerProfile
from repro.core import DatasetIndex
from repro.streaming import ClaimBatch, OnlineDATE, replay_batches

from tests.conftest import assert_same_claim_arrays

VALUES = ("A", "B", "C", "D")

TOL = 1e-9

@st.composite
def streamed_campaigns(draw, max_workers=6, max_tasks=6, max_batches=4):
    """A random campaign plus a random cut into claim batches.

    Every claim is assigned an arrival batch; a task is published with
    its earliest claim (unclaimed tasks arrive in batch 0); workers all
    register in batch 0 (sources may point anywhere then).
    """
    n = draw(st.integers(min_value=2, max_value=max_workers))
    m = draw(st.integers(min_value=1, max_value=max_tasks))
    n_batches = draw(st.integers(min_value=1, max_value=max_batches))
    tasks = tuple(Task(task_id=f"t{j}", domain=VALUES, truth="A") for j in range(m))
    workers = tuple(WorkerProfile(worker_id=f"w{i}") for i in range(n))
    claims: dict[tuple[str, str], str] = {}
    arrival: dict[tuple[str, str], int] = {}
    for i in range(n):
        for j in range(m):
            if draw(st.booleans()):
                key = (f"w{i}", f"t{j}")
                claims[key] = draw(st.sampled_from(VALUES))
                arrival[key] = draw(st.integers(0, n_batches - 1))
    if not claims:
        claims[("w0", "t0")] = draw(st.sampled_from(VALUES))
        arrival[("w0", "t0")] = 0
    dataset = Dataset(tasks=tasks, workers=workers, claims=claims)

    task_batch = {t.task_id: 0 for t in tasks}
    for (_, task_id), batch in arrival.items():
        task_batch[task_id] = min(task_batch.get(task_id, batch), batch)
    batches = []
    for k in range(n_batches):
        batches.append(
            ClaimBatch(
                claims={
                    key: value
                    for key, value in claims.items()
                    if arrival[key] == k
                },
                tasks=tuple(t for t in tasks if task_batch[t.task_id] == k),
                workers=workers if k == 0 else (),
            )
        )
    return dataset, batches


def grow_through_extensions(batches) -> DatasetIndex:
    index = DatasetIndex(Dataset(tasks=(), workers=(), claims={}))
    index.arrays._pair_tables  # materialize so every step takes the splice path
    for batch in batches:
        index = index.extended(
            tasks=batch.tasks, workers=batch.workers, claims=batch.claims
        ).index
    return index


def assert_index_equivalent(grown: DatasetIndex, cold: DatasetIndex) -> None:
    assert grown.task_ids == cold.task_ids
    assert grown.worker_ids == cold.worker_ids
    assert grown.claims_by_task == cold.claims_by_task
    assert grown.claims_by_worker == cold.claims_by_worker
    assert grown.value_groups == cold.value_groups
    np.testing.assert_array_equal(grown.num_false, cold.num_false)
    assert_same_claim_arrays(grown.arrays, cold.arrays)
    for position, (got, want) in enumerate(
        zip(grown.arrays._pair_tables, cold.arrays._pair_tables)
    ):
        np.testing.assert_array_equal(got, want, err_msg=f"pair table {position}")


class TestIncrementalIndexEquivalence:
    @given(campaign=streamed_campaigns())
    @settings(max_examples=60, derandomize=True)
    def test_grown_index_matches_cold_rebuild(self, campaign):
        dataset, batches = campaign
        grown = grow_through_extensions(batches)
        assert_index_equivalent(grown, DatasetIndex(dataset))

    @given(campaign=streamed_campaigns())
    @settings(max_examples=30, derandomize=True)
    def test_replay_batches_cover_exactly(self, campaign):
        dataset, _ = campaign
        batches = replay_batches(dataset, 3)
        merged: dict[tuple[str, str], str] = {}
        seen_tasks: list[str] = []
        seen_workers: set[str] = set()
        for batch in batches:
            for key in batch.claims:
                assert key not in merged
            merged.update(batch.claims)
            seen_tasks.extend(t.task_id for t in batch.tasks)
            seen_workers.update(w.worker_id for w in batch.workers)
        assert merged == dict(dataset.claims)
        assert seen_tasks == [t.task_id for t in dataset.tasks]
        assert seen_workers == {w.worker_id for w in dataset.workers}
        grown = grow_through_extensions(batches)
        # Workers register in first-claim order during a replay, so the
        # cold twin uses the same registration order.
        reordered = Dataset(
            tasks=dataset.tasks,
            workers=tuple(
                dataset.worker_by_id[worker_id] for worker_id in grown.worker_ids
            ),
            claims=dataset.claims,
        )
        assert_index_equivalent(grown, DatasetIndex(reordered))


class TestOnlineEquivalence:
    @given(campaign=streamed_campaigns())
    @settings(max_examples=30, derandomize=True)
    def test_refreshed_online_matches_cold_run(self, campaign):
        dataset, batches = campaign
        online = OnlineDATE()
        for batch in batches:
            online.ingest(batch)
        final = online.refresh()
        cold = DATE().run(dataset)
        assert final.truths == cold.truths
        assert final.iterations == cold.iterations
        np.testing.assert_allclose(
            final.accuracy_matrix, cold.accuracy_matrix, atol=TOL, rtol=0
        )
        for worker_id, accuracy in cold.worker_accuracy.items():
            assert abs(final.worker_accuracy[worker_id] - accuracy) <= TOL
        assert final.confidence.keys() == cold.confidence.keys()
        for task_id, value in cold.confidence.items():
            assert abs(final.confidence[task_id] - value) <= TOL

    @given(campaign=streamed_campaigns(), backend=st.sampled_from(
        ["reference", "vectorized"]
    ))
    @settings(max_examples=20, derandomize=True)
    def test_refresh_exact_on_both_backends(self, campaign, backend):
        dataset, batches = campaign
        config = DateConfig(backend=backend)
        online = OnlineDATE(config)
        for batch in batches:
            online.ingest(batch)
        final = online.refresh()
        cold = DATE(config).run(dataset)
        assert final.truths == cold.truths
        assert final.iterations == cold.iterations
        np.testing.assert_allclose(
            final.accuracy_matrix, cold.accuracy_matrix, atol=TOL, rtol=0
        )
