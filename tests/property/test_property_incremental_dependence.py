"""Property tests: the incremental dependence engine is exact.

Three contracts from DESIGN.md §12 are pinned, all on random campaigns:

- **Refresh exactness** — :class:`IncrementalDependence` refreshed
  through a random sequence of truth-code flips and accuracy rewrites
  equals a full :func:`pairwise_dependence_arrays` pass over the same
  inputs *bit for bit*, every step.
- **Rebind exactness** — aggregates carried across random index
  extensions (appends, dirty-task overlaps, new workers and tasks mid
  stream) stay bit-identical to a cold engine built on the grown index;
  `OnlineDATE(track_dependence=True)` snapshots inherit the property,
  and the ``stable_dependence`` sub-runs leave the online estimate
  exactly where the legacy full-rescoring path put it.
- **Blocked-parallel determinism** — ``intra_workers=4`` is bit-equal
  run to run and within 1e-9 of serial, at kernel level (on arrays
  large enough to engage the blocked path) and through a full
  ``DateConfig(intra_workers=4)`` run.

``derandomize=True`` keeps the corpus stable: this is an acceptance
gate, not a fuzzing lottery.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import DATE, DateConfig
from repro.core import DatasetIndex
from repro.core.engine import IncrementalDependence, pairwise_dependence_arrays
from repro.datasets import generate_qatar_living_like
from repro.streaming import OnlineDATE, replay_batches

from tests.property.test_property_streaming import streamed_campaigns

TOL = 1e-9


def _kernel_params(index: DatasetIndex, cfg: DateConfig) -> dict:
    cfg.false_values.prepare(index)
    return dict(
        copy_prob_r=cfg.copy_prob_r,
        prior_alpha=cfg.prior_alpha,
        collision=cfg.false_values.collision_array(index),
        accuracy_clamp=cfg.accuracy_clamp,
    )


def _random_inputs(index: DatasetIndex, rng) -> tuple[np.ndarray, np.ndarray]:
    """Valid random truth codes (-1 allowed) + claim accuracies."""
    arrays = index.arrays
    group_counts = arrays.task_group_ptr[1:] - arrays.task_group_ptr[:-1]
    codes = np.where(
        group_counts > 0,
        rng.integers(-1, np.maximum(group_counts, 1)),
        -1,
    ).astype(np.int64)
    return codes, rng.uniform(0.05, 0.95, arrays.n_claims)


def _assert_bitwise(got, want) -> None:
    np.testing.assert_array_equal(got.p_ab, want.p_ab)
    np.testing.assert_array_equal(got.p_ba, want.p_ba)


class TestRefreshExactness:
    @given(campaign=streamed_campaigns(), seed=st.integers(0, 2**16))
    @settings(max_examples=40, derandomize=True)
    def test_edit_sequence_matches_full_recompute_bitwise(self, campaign, seed):
        dataset, _ = campaign
        index = DatasetIndex(dataset)
        arrays = index.arrays
        params = _kernel_params(index, DateConfig())
        rng = np.random.default_rng(seed)
        codes, acc = _random_inputs(index, rng)
        engine = IncrementalDependence(arrays, **params)
        for _ in range(4):
            got = engine.refresh(codes, acc)
            _assert_bitwise(
                got, pairwise_dependence_arrays(arrays, codes, acc, **params)
            )
            # Edit a random task subset (possibly empty, possibly all).
            touched = np.flatnonzero(
                rng.random(index.n_tasks) < rng.uniform(0.0, 0.8)
            )
            codes = codes.copy()
            acc = acc.copy()
            for j in touched:
                lo = int(arrays.task_group_ptr[j])
                hi = int(arrays.task_group_ptr[j + 1])
                if hi > lo:
                    codes[j] = rng.integers(-1, hi - lo)
                c0, c1 = int(arrays.task_ptr[j]), int(arrays.task_ptr[j + 1])
                acc[c0:c1] = rng.uniform(0.05, 0.95, c1 - c0)

    @given(campaign=streamed_campaigns(), seed=st.integers(0, 2**16))
    @settings(max_examples=20, derandomize=True)
    def test_explicit_touched_set_matches_diffing(self, campaign, seed):
        dataset, _ = campaign
        index = DatasetIndex(dataset)
        arrays = index.arrays
        params = _kernel_params(index, DateConfig())
        rng = np.random.default_rng(seed)
        codes, acc = _random_inputs(index, rng)
        engine = IncrementalDependence(arrays, **params)
        engine.refresh(codes, acc)
        # A superset touched list (here: every task) must give the same
        # bits as the stored-state diff — over-reporting is harmless.
        codes = codes.copy()
        if index.n_tasks:
            j = int(rng.integers(0, index.n_tasks))
            lo = int(arrays.task_group_ptr[j])
            hi = int(arrays.task_group_ptr[j + 1])
            if hi > lo:
                codes[j] = (int(codes[j]) + 1) % (hi - lo)
        got = engine.refresh(
            codes, acc, touched_tasks=np.arange(index.n_tasks, dtype=np.int64)
        )
        _assert_bitwise(
            got, pairwise_dependence_arrays(arrays, codes, acc, **params)
        )


class TestRebindExactness:
    @given(campaign=streamed_campaigns(), n_batches=st.integers(2, 4))
    @settings(max_examples=30, derandomize=True)
    def test_rebind_across_extensions_matches_cold_engine(
        self, campaign, n_batches
    ):
        """Aggregates survive appends / dirty overlaps / new workers."""
        dataset, _ = campaign
        cfg = DateConfig()
        batches = replay_batches(dataset, n_batches)
        index = DatasetIndex(
            type(dataset)(tasks=(), workers=(), claims={})
        )
        index.arrays._pair_tables
        engine = None
        codes = np.empty(0, dtype=np.int64)
        acc = np.empty(0, dtype=np.float64)
        for batch in batches:
            if batch.is_empty:
                continue
            ext = index.extended(
                tasks=batch.tasks, workers=batch.workers, claims=batch.claims
            )
            index = ext.index
            arrays = index.arrays
            new_acc = np.full(arrays.n_claims, cfg.initial_accuracy)
            if ext.claim_map is not None and len(ext.claim_map):
                new_acc[ext.claim_map] = acc
            acc = new_acc
            # Majority codes change only where claims arrived, so the
            # rebind contract (inputs differ on dirty tasks only) holds.
            codes = arrays.majority_codes()
            params = _kernel_params(index, cfg)
            if engine is None:
                engine = IncrementalDependence(arrays, **params)
                got = engine.refresh(codes, acc)
            else:
                got = engine.rebind(
                    arrays,
                    collision=params["collision"],
                    dirty_tasks=np.asarray(ext.dirty_tasks, dtype=np.int64),
                    truth_codes=codes,
                    claim_acc=acc,
                )
            cold = IncrementalDependence(arrays, **params)
            _assert_bitwise(got, cold.refresh(codes, acc))
            _assert_bitwise(
                got, pairwise_dependence_arrays(arrays, codes, acc, **params)
            )

    @given(campaign=streamed_campaigns())
    @settings(max_examples=20, derandomize=True)
    def test_online_snapshot_and_stable_subruns_exact(self, campaign):
        dataset, batches = campaign
        tracked = OnlineDATE(track_dependence=True)
        legacy = OnlineDATE()
        for batch in batches:
            tracked.ingest(batch)
            legacy.ingest(batch)
            # The stable_dependence sub-run is a pure cost saving: the
            # online estimate is bit-identical to the legacy path.
            assert tracked.truths == legacy.truths
            np.testing.assert_array_equal(
                tracked._claim_acc, legacy._claim_acc
            )
            snap = tracked.dependence_snapshot()
            params = _kernel_params(tracked.index, tracked.config)
            _assert_bitwise(
                snap,
                pairwise_dependence_arrays(
                    tracked.index.arrays,
                    tracked._truth_codes,
                    tracked._claim_acc,
                    **params,
                ),
            )


class TestStableDependenceRuns:
    @given(campaign=streamed_campaigns())
    @settings(max_examples=30, derandomize=True)
    def test_stable_dependence_run_is_bit_identical(self, campaign):
        dataset, _ = campaign
        plain = DATE(DateConfig()).run(dataset)
        stable = DATE(DateConfig(stable_dependence=True)).run(dataset)
        assert stable.truths == plain.truths
        assert stable.iterations == plain.iterations
        assert stable.converged == plain.converged
        np.testing.assert_array_equal(
            stable.accuracy_matrix, plain.accuracy_matrix
        )
        assert stable.confidence == plain.confidence
        assert stable.dependence == plain.dependence


class TestIntraWorkerDeterminism:
    """Blocked 4-thread kernels on arrays big enough to engage blocking."""

    def _state(self):
        dataset = generate_qatar_living_like(
            seed=11, n_tasks=120, n_workers=60, n_copiers=15,
            target_claims=2400,
        )
        index = DatasetIndex(dataset)
        params = _kernel_params(index, DateConfig())
        rng = np.random.default_rng(11)
        codes, acc = _random_inputs(index, rng)
        return dataset, index, codes, acc, params

    def test_kernel_deterministic_and_close_to_serial(self):
        _, index, codes, acc, params = self._state()
        arrays = index.arrays
        assert len(arrays.ps_pair) >= 4096, "scale too small to block"
        serial = pairwise_dependence_arrays(arrays, codes, acc, **params)
        runs = [
            pairwise_dependence_arrays(
                arrays, codes, acc, intra_workers=4, **params
            )
            for _ in range(3)
        ]
        for run in runs[1:]:
            _assert_bitwise(run, runs[0])
        np.testing.assert_allclose(runs[0].p_ab, serial.p_ab, atol=TOL, rtol=0)
        np.testing.assert_allclose(runs[0].p_ba, serial.p_ba, atol=TOL, rtol=0)

    def test_full_run_deterministic_and_close_to_serial(self):
        dataset, _, _, _, _ = self._state()
        serial = DATE(DateConfig()).run(dataset)
        first = DATE(DateConfig(intra_workers=4)).run(dataset)
        second = DATE(DateConfig(intra_workers=4)).run(dataset)
        assert first.truths == second.truths
        np.testing.assert_array_equal(
            first.accuracy_matrix, second.accuracy_matrix
        )
        assert first.confidence == second.confidence
        assert first.truths == serial.truths
        assert first.iterations == serial.iterations
        np.testing.assert_allclose(
            first.accuracy_matrix, serial.accuracy_matrix, atol=TOL, rtol=0
        )
