"""Property-based tests for the scenario-lab strategy transforms.

The contracts pinned here are what the scenario runner's determinism
and the detection metrics rely on:

- chain-copier injection never creates a dependence loop (the no-loop
  assumption of Sec. II-B holds by construction);
- sybil clones preserve the origin's per-identity claim count;
- collusion rings keep the hidden leader out of the claim graph and
  off every worker profile;
- every transform is a pure function of ``(dataset, seed)``.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import WorldConfig
from repro.datasets import generate_world
from repro.scenarios import (
    BidShading,
    ChainCopiers,
    CollusionRing,
    LazyWorkers,
    SybilAmplification,
    apply_strategies,
)

#: One representative instance of every transform, sized for the small
#: hypothesis worlds below (needs at most 8 eligible workers).
ALL_STRATEGIES = (
    ChainCopiers(n_chains=1, chain_length=3),
    CollusionRing(ring_size=3),
    SybilAmplification(n_profiles=1, clones_per_profile=2),
    LazyWorkers(n_workers=2),
    BidShading(n_workers=2),
)


@st.composite
def small_world(draw):
    config = WorldConfig(
        n_tasks=draw(st.integers(min_value=3, max_value=12)),
        n_workers=draw(st.integers(min_value=10, max_value=16)),
        target_claims=draw(st.integers(min_value=40, max_value=120)),
        num_false=draw(st.integers(min_value=1, max_value=3)),
    )
    seed = draw(st.integers(min_value=0, max_value=999))
    return generate_world(config, seed)


def _assert_acyclic(dataset) -> None:
    """The copier -> source edges must form a DAG."""
    edges = {w.worker_id: set(w.sources) for w in dataset.workers}
    WHITE, GRAY, BLACK = 0, 1, 2
    color = dict.fromkeys(edges, WHITE)

    def visit(node: str) -> None:
        color[node] = GRAY
        for nxt in edges[node]:
            assert color[nxt] != GRAY, f"dependence loop through {nxt!r}"
            if color[nxt] == WHITE:
                visit(nxt)
        color[node] = BLACK

    for node in edges:
        if color[node] == WHITE:
            visit(node)


class TestChainCopiers:
    @given(
        world=small_world(),
        seed=st.integers(min_value=0, max_value=999),
        n_chains=st.integers(min_value=1, max_value=3),
        chain_length=st.integers(min_value=2, max_value=4),
    )
    @settings(max_examples=25)
    def test_no_dependence_loop(self, world, seed, n_chains, chain_length):
        if n_chains * chain_length > world.n_workers:
            n_chains, chain_length = 1, 2
        transformed = apply_strategies(
            world, (ChainCopiers(n_chains=n_chains, chain_length=chain_length),), seed
        )
        _assert_acyclic(transformed.dataset)
        # Every labeled copier records its predecessor as its one
        # source; the roots are labeled too (copy-structure members)
        # but keep clean profiles.
        for label in transformed.labels:
            worker = transformed.dataset.worker_by_id[label.worker_id]
            if label.role == "chain-root":
                assert not worker.is_copier
                continue
            assert worker.is_copier
            assert worker.sources == (label.detail["source"],)

    @given(world=small_world(), seed=st.integers(min_value=0, max_value=999))
    @settings(max_examples=15)
    def test_chain_is_transitive_not_a_star(self, world, seed):
        """Depth-2 copiers source from the depth-1 copier, not the root."""
        transformed = apply_strategies(
            world, (ChainCopiers(n_chains=1, chain_length=3),), seed
        )
        by_depth = {
            label.detail["depth"]: label for label in transformed.labels
        }
        assert by_depth[2].detail["source"] == by_depth[1].worker_id


class TestCollusionRing:
    @given(world=small_world(), seed=st.integers(min_value=0, max_value=999))
    @settings(max_examples=25)
    def test_leader_hidden_from_claim_graph(self, world, seed):
        transformed = apply_strategies(world, (CollusionRing(ring_size=3),), seed)
        dataset = transformed.dataset
        (leader,) = transformed.labels_for("leader")
        assert leader.virtual
        worker_ids = {w.worker_id for w in dataset.workers}
        assert leader.worker_id not in worker_ids
        assert all(wid != leader.worker_id for wid, _ in dataset.claims)
        # Members look like plain independents: no profile field betrays
        # the ring, and their answered-task sets are unchanged.
        for member in transformed.labels_for("colluder"):
            profile = dataset.worker_by_id[member.worker_id]
            assert not profile.is_copier
            assert profile.sources == ()
            assert set(dataset.claims_by_worker[member.worker_id]) == set(
                world.claims_by_worker[member.worker_id]
            )


class TestSybilAmplification:
    @given(
        world=small_world(),
        seed=st.integers(min_value=0, max_value=999),
        clones=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=25)
    def test_clones_preserve_claim_counts(self, world, seed, clones):
        transformed = apply_strategies(
            world,
            (SybilAmplification(n_profiles=2, clones_per_profile=clones),),
            seed,
        )
        dataset = transformed.dataset
        assert dataset.n_workers == world.n_workers + 2 * clones
        for label in transformed.labels_for("sybil"):
            origin = label.detail["origin"]
            clone_claims = dataset.claims_by_worker[label.worker_id]
            origin_claims = world.claims_by_worker[origin]
            assert len(clone_claims) == len(origin_claims)
            # Verbatim replay: same tasks, same values.
            assert {
                task_id: value for task_id, value in clone_claims.items()
            } == dict(origin_claims)


class TestTransformPurity:
    @given(world=small_world(), seed=st.integers(min_value=0, max_value=999))
    @settings(max_examples=10)
    def test_pure_function_of_dataset_and_seed(self, world, seed):
        """Same (dataset, seed) ⇒ identical dataset, for every transform."""
        for strategy in ALL_STRATEGIES:
            first = apply_strategies(world, (strategy,), seed)
            second = apply_strategies(world, (strategy,), seed)
            assert first.dataset.claims == second.dataset.claims
            assert first.dataset.workers == second.dataset.workers
            assert first.dataset.tasks == second.dataset.tasks
            assert first.labels == second.labels

    @given(world=small_world(), seed=st.integers(min_value=0, max_value=999))
    @settings(max_examples=10)
    def test_stack_never_corrupts_earlier_footprints(self, world, seed):
        """Later strategies leave earlier strategies' workers alone.

        Ring colluders (unmarked on profiles by design), sybil origins,
        and chain roots must keep their post-transform claims through
        the rest of the stack — otherwise the planted dependence signal
        that detection is scored against silently disappears.
        """
        stack = (
            CollusionRing(ring_size=3),
            SybilAmplification(n_profiles=1, clones_per_profile=2),
            LazyWorkers(n_workers=3),
        )
        transformed = apply_strategies(world, stack, seed)
        dataset = transformed.dataset
        spammers = {
            label.worker_id for label in transformed.labels_for("spammer")
        }
        colluders = {
            label.worker_id for label in transformed.labels_for("colluder")
        }
        assert not spammers & colluders
        # Sybil clones still replay their origin verbatim at the end of
        # the stack — nothing rewrote either side.
        for label in transformed.labels_for("sybil"):
            origin = label.detail["origin"]
            assert origin not in spammers
            assert dict(dataset.claims_by_worker[label.worker_id]) == dict(
                dataset.claims_by_worker[origin]
            )

    @given(world=small_world(), seed=st.integers(min_value=0, max_value=999))
    @settings(max_examples=10)
    def test_stack_purity_and_input_immutability(self, world, seed):
        """Stacks are pure too, and never mutate the input dataset."""
        before = dict(world.claims)
        stack = (
            ChainCopiers(n_chains=1, chain_length=2),
            LazyWorkers(n_workers=2),
            BidShading(n_workers=2),
        )
        first = apply_strategies(world, stack, seed)
        second = apply_strategies(world, stack, seed)
        assert first.dataset.claims == second.dataset.claims
        assert first.labels == second.labels
        assert world.claims == before


class TestHeterogeneousDomains:
    @given(seed=st.integers(min_value=0, max_value=999))
    @settings(max_examples=15)
    def test_copy_strategies_survive_uneven_domain_sizes(self, seed):
        """Transforms work on datasets whose tasks have different
        domain sizes (e.g. CSV campaigns with inferred domains)."""
        from repro import Dataset, Task, WorkerProfile

        tasks = tuple(
            Task(
                task_id=f"t{j}",
                domain=tuple("ABCDEF"[: 2 + (j % 4)]),
                truth="A",
            )
            for j in range(8)
        )
        workers = tuple(
            WorkerProfile(worker_id=f"w{i}", reliability=0.7) for i in range(12)
        )
        claims = {
            (w.worker_id, t.task_id): ("A" if (i + j) % 3 else t.domain[-1])
            for i, w in enumerate(workers)
            for j, t in enumerate(tasks)
        }
        dataset = Dataset(tasks=tasks, workers=workers, claims=claims)
        stack = (
            ChainCopiers(n_chains=1, chain_length=3),
            CollusionRing(ring_size=3),
            LazyWorkers(n_workers=2),
        )
        transformed = apply_strategies(dataset, stack, seed)
        # Every rewritten claim is still a member of its task's domain.
        for (worker_id, task_id), value in transformed.dataset.claims.items():
            assert value in transformed.dataset.task_by_id[task_id].domain


class TestLazyAndShading:
    @given(world=small_world(), seed=st.integers(min_value=0, max_value=999))
    @settings(max_examples=15)
    def test_lazy_workers_keep_participation(self, world, seed):
        transformed = apply_strategies(world, (LazyWorkers(n_workers=3),), seed)
        for label in transformed.labels_for("spammer"):
            assert set(
                transformed.dataset.claims_by_worker[label.worker_id]
            ) == set(world.claims_by_worker[label.worker_id])

    @given(world=small_world(), seed=st.integers(min_value=0, max_value=999))
    @settings(max_examples=15)
    def test_bid_shading_touches_only_bids(self, world, seed):
        transformed = apply_strategies(world, (BidShading(n_workers=3),), seed)
        assert transformed.dataset.claims == world.claims
        prices = transformed.bid_prices()
        assert len(prices) == 3
        for label in transformed.labels_for("bid-shader"):
            worker = world.worker_by_id[label.worker_id]
            assert prices[label.worker_id] == worker.cost * 0.6
