"""Property tests: zoo-wide invariants on random campaigns.

Every algorithm in the registry, on randomly shaped worlds:

- determinism — two fresh discoverers under one seed agree bit for bit;
- sanity — precision lands in [0, 1], every estimated truth is a value
  some worker actually claimed for that task, unanswered tasks are
  omitted, worker accuracies are finite;
- unanimity — when all claims on a task agree, every algorithm returns
  the unanimous value;
- order-preserving relabel — renaming values through a monotone
  bijection maps the truths and leaves the numeric state untouched.

``derandomize=True`` keeps the corpus stable: this is an acceptance
gate, not a fuzzing lottery.
"""

from __future__ import annotations

import dataclasses
import warnings

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Dataset, Task, WorkerProfile
from repro.discovery import ALGORITHM_NAMES, make_discoverer

VALUES = ("A", "B", "C", "D")


@st.composite
def campaigns(draw, max_workers=8, max_tasks=6):
    n = draw(st.integers(min_value=2, max_value=max_workers))
    m = draw(st.integers(min_value=1, max_value=max_tasks))
    tasks = tuple(
        Task(task_id=f"t{j}", domain=VALUES, truth="A") for j in range(m)
    )
    workers = tuple(WorkerProfile(worker_id=f"w{i}") for i in range(n))
    claims: dict[tuple[str, str], str] = {}
    for i in range(n):
        for j in range(m):
            if draw(st.booleans()):
                claims[(f"w{i}", f"t{j}")] = draw(st.sampled_from(VALUES))
    if not claims:
        claims[("w0", "t0")] = draw(st.sampled_from(VALUES))
    return Dataset(tasks=tasks, workers=workers, claims=claims)


def _run(name, dataset, **kwargs):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        return make_discoverer(name, seed=0, **kwargs).run(dataset)


@settings(max_examples=10, derandomize=True)
@given(dataset=campaigns())
def test_determinism_and_sanity(dataset):
    claimed = {}
    for (worker_id, task_id), value in dataset.claims.items():
        claimed.setdefault(task_id, set()).add(value)
    for name in ALGORITHM_NAMES:
        first = _run(name, dataset)
        second = _run(name, dataset)
        assert first.truths == second.truths, name
        assert first.worker_accuracy == second.worker_accuracy, name
        assert np.array_equal(first.accuracy_matrix, second.accuracy_matrix)
        assert 0.0 <= first.precision() <= 1.0, name
        for task_id, value in first.truths.items():
            assert value in claimed[task_id], name
        for task in dataset.tasks:
            if task.task_id not in claimed:
                assert task.task_id not in first.truths, name
        for accuracy in first.worker_accuracy.values():
            assert np.isfinite(accuracy), name


@settings(max_examples=10, derandomize=True)
@given(dataset=campaigns(max_workers=5, max_tasks=4))
def test_unanimous_tasks_resolve_to_the_unanimous_value(dataset):
    unanimous = tuple(
        Task(task_id=t.task_id, domain=t.domain, truth=t.truth)
        for t in dataset.tasks
    )
    claims = {key: "B" for key in dataset.claims}
    forced = Dataset(tasks=unanimous, workers=dataset.workers, claims=claims)
    answered = {task_id for _, task_id in claims}
    for name in ALGORITHM_NAMES:
        result = _run(name, forced)
        assert set(result.truths) == answered, name
        assert all(value == "B" for value in result.truths.values()), name


@settings(max_examples=8, derandomize=True)
@given(dataset=campaigns(max_workers=6, max_tasks=5))
def test_order_preserving_relabel(dataset):
    mapping = {"A": "pa", "B": "pb", "C": "pc", "D": "pd"}
    relabeled = Dataset(
        tasks=tuple(
            dataclasses.replace(
                task,
                domain=tuple(mapping[v] for v in task.domain),
                truth=mapping[task.truth],
            )
            for task in dataset.tasks
        ),
        workers=dataset.workers,
        claims={key: mapping[v] for key, v in dataset.claims.items()},
    )
    for name in ALGORITHM_NAMES:
        base = _run(name, dataset)
        mapped = _run(name, relabeled)
        assert mapped.truths == {
            task_id: mapping[value] for task_id, value in base.truths.items()
        }, name
        assert mapped.worker_accuracy == base.worker_accuracy, name
