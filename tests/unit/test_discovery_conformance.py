"""Conformance suite: the membership bar of the algorithm zoo.

Every algorithm behind the :class:`~repro.discovery.TruthDiscoverer`
interface must pass *all* of these, on the same parametrized axis:

- protocol shape (runtime-checkable isinstance, ``method_name``);
- unanimous claims resolve exactly like majority vote;
- bit-identical determinism across fresh instances under one seed;
- worker-permutation equivariance (truths always; accuracies for
  algorithms whose reputation is order-free);
- value-relabel equivariance (order-preserving bijections exactly;
  arbitrary bijections on tie-free data);
- lean/full consistency of the estimate-carrying fields;
- lossless ledger round-trips through JSON;
- telemetry on/off bit-identity;
- warm starts accepted (used or ignored, never an error);
- unanswered tasks omitted from the truth map.

A new algorithm joins the zoo by appearing in the registry and passing
this file unchanged.
"""

from __future__ import annotations

import dataclasses
import json
import warnings

import numpy as np
import pytest

from repro.artifacts import (
    fingerprint,
    truth_result_from_payload,
    truth_result_to_payload,
)
from repro.core.indexing import DatasetIndex
from repro.datasets.qatar_living import generate_qatar_living_like
from repro.discovery import (
    ALGORITHM_NAMES,
    TruthDiscoverer,
    UnknownAlgorithmError,
    canonical_algorithm,
    list_algorithms,
    make_discoverer,
)
from repro.obs.metrics import MetricsRegistry, set_registry
from repro.types import Dataset, Task, WorkerProfile

#: Algorithms whose per-worker reputation is a pure per-worker
#: aggregate, hence exactly equivariant under worker reordering.  DATE
#: and ED discount accuracies through greedy source-dependence
#: orderings that legitimately depend on worker positions, so only
#: their *truths* are pinned under permutation.
ORDER_FREE_ACCURACY = ("MV", "NC", "TruthFinder", "FDS", "LCA")


def _run(name, dataset, *, index=None, seed=0, **kwargs):
    discoverer = make_discoverer(name, seed=seed)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        return discoverer.run(dataset, index=index, **kwargs)


def _assert_bit_identical(a, b):
    assert a.truths == b.truths
    assert a.worker_accuracy == b.worker_accuracy
    assert a.confidence == b.confidence
    assert a.support == b.support
    assert a.dependence == b.dependence
    assert np.array_equal(a.accuracy_matrix, b.accuracy_matrix)
    assert a.iterations == b.iterations
    assert a.converged == b.converged
    assert a.method == b.method


@pytest.fixture(scope="module")
def campaign():
    dataset = generate_qatar_living_like(
        seed=7, n_tasks=30, n_workers=18, n_copiers=4, target_claims=400
    )
    return dataset, DatasetIndex(dataset)


def _unanimous_dataset():
    """Every answered task gets one unanimous value; one task unanswered."""
    tasks = tuple(
        Task(task_id=f"t{j}", domain=("A", "B", "C"), truth="A")
        for j in range(5)
    )
    workers = tuple(WorkerProfile(worker_id=f"w{i}") for i in range(4))
    claims = {
        (f"w{i}", f"t{j}"): "ABC"[j % 3]
        for j in range(4)  # t4 stays unanswered
        for i in range(4)
    }
    return Dataset(tasks=tasks, workers=workers, claims=claims)


def _tie_free_dataset():
    """Distinct per-task vote counts so no argmax ever ties."""
    tasks = tuple(
        Task(task_id=f"t{j}", domain=("A", "B", "C"), truth="A")
        for j in range(4)
    )
    workers = tuple(WorkerProfile(worker_id=f"w{i}") for i in range(5))
    claims = {}
    for j in range(4):
        for i in range(5):
            # 4-1 split: four workers agree, one dissents — a strict
            # majority no reputation re-weighting can tie up.
            claims[(f"w{i}", f"t{j}")] = "A" if i < 4 else "B"
    return Dataset(tasks=tasks, workers=workers, claims=claims)


def _relabel(dataset: Dataset, mapping: dict[str, str]) -> Dataset:
    tasks = tuple(
        dataclasses.replace(
            task,
            domain=tuple(mapping.get(v, v) for v in task.domain),
            truth=None if task.truth is None else mapping.get(task.truth, task.truth),
        )
        for task in dataset.tasks
    )
    claims = {key: mapping[value] for key, value in dataset.claims.items()}
    return Dataset(tasks=tasks, workers=dataset.workers, claims=claims)


@pytest.mark.parametrize("name", ALGORITHM_NAMES)
class TestConformance:
    def test_protocol_shape(self, name):
        discoverer = make_discoverer(name)
        assert isinstance(discoverer, TruthDiscoverer)
        assert discoverer.method_name == name
        assert discoverer.__fingerprint__() is not None

    def test_unanimous_claims_match_majority_vote(self, name):
        dataset = _unanimous_dataset()
        result = _run(name, dataset)
        mv = _run("MV", dataset)
        assert result.truths == mv.truths
        for j in range(4):
            assert result.truths[f"t{j}"] == "ABC"[j % 3]

    def test_unanswered_task_omitted(self, name):
        result = _run(name, _unanimous_dataset())
        assert "t4" not in result.truths

    def test_seed_determinism(self, name, campaign):
        dataset, index = campaign
        first = _run(name, dataset, index=index, seed=11)
        second = _run(name, dataset, index=index, seed=11)
        _assert_bit_identical(first, second)

    def test_worker_permutation_equivariance(self, name, campaign):
        dataset, index = campaign
        rng = np.random.default_rng(5)
        order = rng.permutation(len(dataset.workers))
        permuted = Dataset(
            tasks=dataset.tasks,
            workers=tuple(dataset.workers[i] for i in order),
            claims=dataset.claims,
        )
        base = _run(name, dataset, index=index)
        shuffled = _run(name, permuted)
        assert base.truths == shuffled.truths
        if name in ORDER_FREE_ACCURACY:
            assert set(base.worker_accuracy) == set(shuffled.worker_accuracy)
            for worker_id, value in base.worker_accuracy.items():
                assert shuffled.worker_accuracy[worker_id] == pytest.approx(
                    value, abs=1e-9
                )

    def test_order_preserving_relabel_bit_identity(self, name, campaign):
        dataset, index = campaign
        values = sorted(
            {v for v in dataset.claims.values()}
            | {v for t in dataset.tasks for v in t.domain}
            | {t.truth for t in dataset.tasks if t.truth is not None}
        )
        assert len(values) <= 26 * 26
        mapping = {
            v: f"{chr(97 + i // 26)}{chr(97 + i % 26)}"
            for i, v in enumerate(values)
        }
        base = _run(name, dataset, index=index)
        relabeled = _run(name, _relabel(dataset, mapping))
        assert relabeled.truths == {
            task_id: mapping[value] for task_id, value in base.truths.items()
        }
        # Order preservation keeps every integer code identical, so the
        # numeric state must match bit for bit.
        assert relabeled.worker_accuracy == base.worker_accuracy
        assert np.array_equal(relabeled.accuracy_matrix, base.accuracy_matrix)
        assert relabeled.iterations == base.iterations

    def test_arbitrary_relabel_equivariance(self, name):
        dataset = _tie_free_dataset()
        mapping = {"A": "zz", "B": "aa", "C": "mm"}  # order-reversing
        base = _run(name, dataset)
        relabeled = _run(name, _relabel(dataset, mapping))
        assert relabeled.truths == {
            task_id: mapping[value] for task_id, value in base.truths.items()
        }

    def test_lean_full_consistency(self, name, campaign):
        dataset, index = campaign
        full = _run(name, dataset, index=index, lean=False)
        lean = _run(name, dataset, index=index, lean=True)
        assert lean.truths == full.truths
        assert lean.confidence == full.confidence
        assert lean.worker_accuracy == full.worker_accuracy
        assert np.array_equal(lean.accuracy_matrix, full.accuracy_matrix)

    def test_ledger_round_trip_bit_identity(self, name, campaign):
        dataset, index = campaign
        result = _run(name, dataset, index=index)
        payload = json.loads(json.dumps(truth_result_to_payload(result)))
        restored = truth_result_from_payload(payload)
        _assert_bit_identical(result, restored)
        assert restored.worker_ids == result.worker_ids
        assert restored.task_ids == result.task_ids

    def test_telemetry_bit_identity(self, name, campaign):
        dataset, index = campaign
        baseline = _run(name, dataset, index=index)
        previous = set_registry(MetricsRegistry(enabled=True))
        try:
            instrumented = _run(name, dataset, index=index)
        finally:
            set_registry(previous)
        _assert_bit_identical(baseline, instrumented)

    def test_warm_start_accepted(self, name, campaign):
        dataset, index = campaign
        warm = _run(name, dataset, index=index)
        restarted = _run(name, dataset, index=index, warm_start=warm)
        assert set(restarted.truths) == set(warm.truths)
        for value in restarted.truths.values():
            assert value is not None

    def test_fingerprint_stable_across_constructions(self, name):
        assert fingerprint(make_discoverer(name)) == fingerprint(
            make_discoverer(name)
        )


class TestRegistry:
    def test_zoo_fingerprints_unique(self):
        prints = [fingerprint(make_discoverer(n)) for n in ALGORITHM_NAMES]
        assert len(set(prints)) == len(ALGORITHM_NAMES)

    @pytest.mark.parametrize("name", ("TruthFinder", "FDS", "LCA"))
    def test_seed_changes_native_fingerprint(self, name):
        assert fingerprint(make_discoverer(name, seed=0)) != fingerprint(
            make_discoverer(name, seed=1)
        )

    def test_case_insensitive_lookup(self):
        assert canonical_algorithm("truthfinder") == "TruthFinder"
        assert canonical_algorithm(" date ") == "DATE"
        assert make_discoverer("fds").method_name == "FDS"

    def test_unknown_algorithm_raises(self):
        with pytest.raises(UnknownAlgorithmError):
            make_discoverer("nope")
        with pytest.raises(UnknownAlgorithmError):
            canonical_algorithm("nope")

    def test_listing_matches_names(self):
        assert tuple(s.name for s in list_algorithms()) == ALGORITHM_NAMES
        assert all(s.summary for s in list_algorithms())
        assert {s.kind for s in list_algorithms()} == {"adapter", "native"}
