"""Unit tests for the online estimator (repro.streaming.online)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import DATE, DateConfig, Task, WorkerProfile
from repro.errors import ConfigurationError, DataFormatError
from repro.streaming import ClaimBatch, OnlineDATE, replay_batches


class TestLifecycle:
    def test_starts_empty(self):
        online = OnlineDATE()
        assert online.dataset.n_tasks == 0
        assert online.truths == {}
        assert online.worker_accuracy == {}
        assert online.n_batches == 0

    def test_empty_batch_is_noop(self):
        online = OnlineDATE()
        update = online.ingest(ClaimBatch())
        assert update.new_claims == 0
        assert update.dirty_tasks == 0
        assert not update.refreshed
        assert online.n_batches == 0

    def test_invalid_refresh_every(self):
        with pytest.raises(ConfigurationError):
            OnlineDATE(refresh_every=-1)

    def test_duplicate_claim_across_batches_rejected(self):
        online = OnlineDATE()
        online.ingest(
            ClaimBatch(
                claims={("w", "t"): "A"},
                tasks=(Task(task_id="t"),),
                workers=(WorkerProfile(worker_id="w"),),
            )
        )
        with pytest.raises(DataFormatError, match="duplicate claim"):
            online.ingest(ClaimBatch(claims={("w", "t"): "B"}))

    def test_tasks_without_claims_have_no_truths(self):
        online = OnlineDATE()
        online.ingest(ClaimBatch(tasks=(Task(task_id="t"),)))
        assert online.truths == {}
        assert online.dataset.n_tasks == 1

    def test_from_dataset_single_shot(self, qlf_small):
        online = OnlineDATE.from_dataset(qlf_small)
        assert online.n_batches == 1
        assert online.dataset.n_claims == qlf_small.n_claims
        assert set(online.truths)  # estimated something


class TestEstimates:
    def test_refresh_matches_cold_run_exactly(self, qlf_small):
        online = OnlineDATE()
        for batch in replay_batches(qlf_small, 4):
            online.ingest(batch)
        final = online.refresh()
        cold = DATE().run(qlf_small)
        assert final.truths == cold.truths
        assert final.iterations == cold.iterations
        np.testing.assert_allclose(
            final.accuracy_matrix, cold.accuracy_matrix, atol=1e-9, rtol=0
        )

    def test_snapshot_carries_current_state(self, qlf_small):
        online = OnlineDATE()
        for batch in replay_batches(qlf_small, 4):
            online.ingest(batch)
        snapshot = online.snapshot()
        assert snapshot.method == "OnlineDATE"
        assert snapshot.truths == online.truths
        assert snapshot.worker_accuracy == online.worker_accuracy
        assert 0.0 <= snapshot.precision() <= 1.0

    def test_periodic_refresh_fires(self, qlf_small):
        online = OnlineDATE(refresh_every=2)
        updates = [online.ingest(b) for b in replay_batches(qlf_small, 4)]
        assert [u.refreshed for u in updates] == [False, True, False, True]
        # After a refresh on the final batch the state equals a cold run.
        cold = DATE().run(online.dataset)
        assert online.truths == cold.truths

    def test_dirty_scope_estimates_cover_ingested_tasks(self, qlf_small):
        online = OnlineDATE()
        batches = replay_batches(qlf_small, 4)
        online.ingest(batches[0])
        claimed = {task_id for (_, task_id) in batches[0].claims}
        assert set(online.truths) == claimed

    def test_new_workers_start_at_epsilon(self):
        config = DateConfig(initial_accuracy=0.5)
        online = OnlineDATE(config)
        online.ingest(
            ClaimBatch(
                claims={("w0", "t0"): "A"},
                tasks=(Task(task_id="t0"),),
                workers=(WorkerProfile(worker_id="w0"),),
            )
        )
        # Register a worker with no claims: reputation reported as 0
        # (no answered tasks), matching the batch result convention.
        online.ingest(ClaimBatch(workers=(WorkerProfile(worker_id="w1"),)))
        assert online.worker_accuracy["w1"] == 0.0

    def test_reference_backend_supported(self, qlf_small):
        config = DateConfig(backend="reference")
        online = OnlineDATE(config)
        for batch in replay_batches(qlf_small, 3):
            online.ingest(batch)
        final = online.refresh()
        cold = DATE(config).run(qlf_small)
        assert final.truths == cold.truths


class TestLeanRun:
    def test_lean_matches_full_estimates(self, qlf_small):
        full = DATE().run(qlf_small)
        lean = DATE().run(qlf_small, lean=True)
        assert lean.truths == full.truths
        assert lean.iterations == full.iterations
        np.testing.assert_allclose(
            lean.accuracy_matrix, full.accuracy_matrix, atol=0
        )
        assert lean.confidence == full.confidence
        assert lean.worker_accuracy == full.worker_accuracy

    def test_lean_skips_tables(self, qlf_small):
        lean = DATE().run(qlf_small, lean=True)
        assert lean.support == {}
        assert lean.dependence == {}
