"""Unit tests for the GA and GB auction baselines."""

from __future__ import annotations

import numpy as np
import pytest

from repro import GreedyAccuracy, GreedyBid, InfeasibleCoverageError, ReverseAuction
from repro.auction.soac import SOACInstance


def instance_from(accuracy, bids, requirements) -> SOACInstance:
    accuracy = np.asarray(accuracy, dtype=float)
    n, m = accuracy.shape
    bids = np.asarray(bids, dtype=float)
    return SOACInstance(
        worker_ids=tuple(f"w{i}" for i in range(n)),
        task_ids=tuple(f"t{j}" for j in range(m)),
        requirements=np.asarray(requirements, dtype=float),
        accuracy=accuracy,
        bids=bids,
        costs=bids.copy(),
        task_values=np.full(m, 5.0),
    )


class TestGreedyAccuracy:
    def test_picks_highest_coverage_first(self):
        instance = instance_from(
            accuracy=[[0.9, 0.0], [0.5, 0.5], [0.0, 0.9]],
            bids=[1.0, 1.0, 1.0],
            requirements=[0.9, 0.9],
        )
        outcome = GreedyAccuracy().run(instance)
        assert outcome.winner_ids[0] == "w1"  # covers 1.0 vs 0.9

    def test_ignores_price(self):
        instance = instance_from(
            accuracy=[[1.0], [0.9]],
            bids=[100.0, 0.1],
            requirements=[1.0],
        )
        outcome = GreedyAccuracy().run(instance)
        assert outcome.winner_ids[0] == "w0"

    def test_covers(self, soac_medium):
        outcome = GreedyAccuracy().run(soac_medium)
        assert soac_medium.is_covering(outcome.winner_indexes)

    def test_pays_bids(self, soac_medium):
        outcome = GreedyAccuracy().run(soac_medium)
        bid_by_id = dict(zip(soac_medium.worker_ids, soac_medium.bids))
        for worker_id, payment in outcome.payments.items():
            assert payment == pytest.approx(bid_by_id[worker_id])

    def test_infeasible_raises(self):
        instance = instance_from(
            accuracy=[[0.1]], bids=[1.0], requirements=[1.0]
        )
        with pytest.raises(InfeasibleCoverageError):
            GreedyAccuracy().run(instance)

    def test_method_name(self, soac_medium):
        assert GreedyAccuracy().run(soac_medium).method == "GA"


class TestGreedyBid:
    def test_picks_cheapest_useful_first(self):
        instance = instance_from(
            accuracy=[[0.9, 0.0], [0.5, 0.5], [0.0, 0.9]],
            bids=[0.5, 3.0, 1.0],
            requirements=[0.9, 0.9],
        )
        outcome = GreedyBid().run(instance)
        assert outcome.winner_ids[0] == "w0"

    def test_skips_useless_cheap_workers(self):
        instance = instance_from(
            # w0 is cheapest but has zero accuracy everywhere.
            accuracy=[[0.0], [0.8], [0.9]],
            bids=[0.1, 1.0, 2.0],
            requirements=[0.8],
        )
        outcome = GreedyBid().run(instance)
        assert "w0" not in outcome.winner_ids

    def test_covers(self, soac_medium):
        outcome = GreedyBid().run(soac_medium)
        assert soac_medium.is_covering(outcome.winner_indexes)

    def test_vickrey_style_payment_not_below_bid(self, soac_medium):
        outcome = GreedyBid().run(soac_medium)
        bid_by_id = dict(zip(soac_medium.worker_ids, soac_medium.bids))
        for worker_id, payment in outcome.payments.items():
            assert payment >= bid_by_id[worker_id] - 1e-9

    def test_method_name(self, soac_medium):
        assert GreedyBid().run(soac_medium).method == "GB"


class TestSocialCostOrdering:
    def test_ra_never_worse_than_both_baselines_on_seeds(self):
        """The paper's Fig. 6 headline: RA achieves the lowest social
        cost.  On any single instance RA might tie, so compare averages
        over seeded instances."""
        rng = np.random.default_rng(0)
        ra_total, ga_total, gb_total = 0.0, 0.0, 0.0
        for _ in range(5):
            n, m = 14, 5
            accuracy = np.where(
                rng.random((n, m)) < 0.7, rng.uniform(0.2, 0.9, (n, m)), 0.0
            )
            bids = rng.uniform(1.0, 9.0, n)
            instance = SOACInstance(
                worker_ids=tuple(f"w{i}" for i in range(n)),
                task_ids=tuple(f"t{j}" for j in range(m)),
                requirements=np.full(m, 1.2),
                accuracy=accuracy,
                bids=bids,
                costs=bids.copy(),
                task_values=np.full(m, 6.0),
            )
            ra_total += ReverseAuction().run(instance).social_cost
            ga_total += GreedyAccuracy().run(instance).social_cost
            gb_total += GreedyBid().run(instance).social_cost
        assert ra_total <= ga_total
        assert ra_total <= gb_total
