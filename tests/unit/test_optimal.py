"""Unit tests for the exact ILP solver (repro.auction.optimal)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import InfeasibleCoverageError, ReverseAuction, SOACInstance, solve_optimal


def instance_from(accuracy, bids, requirements, costs=None) -> SOACInstance:
    accuracy = np.asarray(accuracy, dtype=float)
    n, m = accuracy.shape
    bids = np.asarray(bids, dtype=float)
    return SOACInstance(
        worker_ids=tuple(f"w{i}" for i in range(n)),
        task_ids=tuple(f"t{j}" for j in range(m)),
        requirements=np.asarray(requirements, dtype=float),
        accuracy=accuracy,
        bids=bids,
        costs=np.asarray(costs, dtype=float) if costs is not None else bids.copy(),
        task_values=np.full(m, 5.0),
    )


class TestSolveOptimal:
    def test_hand_checkable_optimum(self, soac_small):
        solution = solve_optimal(soac_small)
        assert set(solution.winner_ids) == {"w3"}
        assert solution.objective == pytest.approx(2.0)

    def test_picks_specialists_when_generalist_overpriced(self):
        instance = instance_from(
            accuracy=[[1, 0], [0, 1], [1, 1]],
            bids=[1.0, 1.0, 5.0],
            requirements=[1.0, 1.0],
        )
        solution = solve_optimal(instance)
        assert set(solution.winner_ids) == {"w0", "w1"}
        assert solution.objective == pytest.approx(2.0)

    def test_solution_covers(self, soac_medium):
        solution = solve_optimal(soac_medium)
        assert soac_medium.is_covering(solution.winner_indexes)

    def test_greedy_never_beats_optimal(self, soac_medium):
        greedy = ReverseAuction().run(soac_medium)
        optimal = solve_optimal(soac_medium)
        assert greedy.social_cost >= optimal.social_cost - 1e-9

    def test_greedy_within_theoretical_bound(self, soac_medium):
        from repro.auction.properties import approximation_bound

        greedy = ReverseAuction().run(soac_medium)
        optimal = solve_optimal(soac_medium)
        if optimal.social_cost > 0:
            ratio = greedy.social_cost / optimal.social_cost
            assert ratio <= approximation_bound(soac_medium)

    def test_use_costs_switch(self):
        instance = instance_from(
            accuracy=[[1.0], [1.0]],
            bids=[1.0, 2.0],
            requirements=[1.0],
            costs=[3.0, 0.5],
        )
        by_bids = solve_optimal(instance)
        by_costs = solve_optimal(instance, use_costs=True)
        assert by_bids.winner_ids == ("w0",)
        assert by_costs.winner_ids == ("w1",)

    def test_infeasible_raises(self):
        instance = instance_from(
            accuracy=[[0.3]], bids=[1.0], requirements=[1.0]
        )
        with pytest.raises(InfeasibleCoverageError):
            solve_optimal(instance)

    def test_fractional_cover_handled(self):
        """Multi-cover with fractional accuracies: needs two of three."""
        instance = instance_from(
            accuracy=[[0.6], [0.6], [0.6]],
            bids=[1.0, 2.0, 3.0],
            requirements=[1.2],
        )
        solution = solve_optimal(instance)
        assert set(solution.winner_ids) == {"w0", "w1"}
