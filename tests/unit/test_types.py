"""Unit tests for the core data model (repro.types)."""

from __future__ import annotations

import pytest

from repro import Bid, ConfigurationError, DataFormatError, Dataset, Task, WorkerProfile


class TestTask:
    def test_basic_construction(self):
        task = Task(task_id="t1", domain=("A", "B"), requirement=2.0, truth="A")
        assert task.task_id == "t1"
        assert task.num_false == 1

    def test_open_domain_has_zero_num_false(self):
        assert Task(task_id="t1").num_false == 0

    def test_empty_id_rejected(self):
        with pytest.raises(DataFormatError):
            Task(task_id="")

    def test_duplicate_domain_values_rejected(self):
        with pytest.raises(DataFormatError):
            Task(task_id="t1", domain=("A", "A"))

    def test_negative_requirement_rejected(self):
        with pytest.raises(ConfigurationError):
            Task(task_id="t1", requirement=-0.5)

    def test_truth_outside_closed_domain_rejected(self):
        with pytest.raises(DataFormatError):
            Task(task_id="t1", domain=("A", "B"), truth="C")

    def test_truth_allowed_with_open_domain(self):
        assert Task(task_id="t1", truth="anything").truth == "anything"

    def test_with_requirement_returns_copy(self):
        task = Task(task_id="t1", requirement=1.0)
        other = task.with_requirement(3.0)
        assert other.requirement == 3.0
        assert task.requirement == 1.0


class TestWorkerProfile:
    def test_defaults(self):
        worker = WorkerProfile(worker_id="w")
        assert not worker.is_copier
        assert worker.sources == ()

    def test_negative_cost_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkerProfile(worker_id="w", cost=-1.0)

    @pytest.mark.parametrize("reliability", [-0.1, 1.1])
    def test_reliability_bounds(self, reliability):
        with pytest.raises(ConfigurationError):
            WorkerProfile(worker_id="w", reliability=reliability)

    def test_copier_requires_sources(self):
        with pytest.raises(ConfigurationError):
            WorkerProfile(worker_id="w", is_copier=True)

    def test_self_copy_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkerProfile(worker_id="w", is_copier=True, sources=("w",))

    def test_with_cost(self):
        worker = WorkerProfile(worker_id="w", cost=1.0)
        assert worker.with_cost(9.0).cost == 9.0


class TestBid:
    def test_valid(self):
        bid = Bid(worker_id="w", task_ids=frozenset({"t1"}), price=2.0)
        assert bid.price == 2.0

    def test_negative_price_rejected(self):
        with pytest.raises(ConfigurationError):
            Bid(worker_id="w", task_ids=frozenset({"t1"}), price=-1.0)

    def test_empty_task_set_rejected(self):
        with pytest.raises(ConfigurationError):
            Bid(worker_id="w", task_ids=frozenset(), price=1.0)


class TestDataset:
    def test_views(self, tiny_dataset):
        assert tiny_dataset.n_tasks == 4
        assert tiny_dataset.n_workers == 5
        assert tiny_dataset.n_claims == 18
        assert tiny_dataset.claims_by_task["t0"]["w1"] == "A"
        assert tiny_dataset.claims_by_worker["w5"] == {"t0": "A", "t1": "A"}

    def test_value_groups(self, tiny_dataset):
        groups = tiny_dataset.value_groups("t1")
        assert groups["A"] == frozenset({"w1", "w2", "w5"})
        assert groups["B"] == frozenset({"w3", "w4"})

    def test_truths(self, tiny_dataset):
        assert tiny_dataset.truths == {f"t{j}": "A" for j in range(4)}

    def test_duplicate_task_ids_rejected(self):
        task = Task(task_id="t1")
        with pytest.raises(DataFormatError):
            Dataset(tasks=(task, task), workers=(), claims={})

    def test_duplicate_worker_ids_rejected(self):
        worker = WorkerProfile(worker_id="w")
        with pytest.raises(DataFormatError):
            Dataset(tasks=(), workers=(worker, worker), claims={})

    def test_claim_unknown_worker_rejected(self, tiny_dataset):
        claims = dict(tiny_dataset.claims)
        claims[("ghost", "t0")] = "A"
        with pytest.raises(DataFormatError):
            tiny_dataset.with_claims(claims)

    def test_claim_unknown_task_rejected(self, tiny_dataset):
        claims = dict(tiny_dataset.claims)
        claims[("w1", "ghost")] = "A"
        with pytest.raises(DataFormatError):
            tiny_dataset.with_claims(claims)

    def test_claim_outside_domain_rejected(self, tiny_dataset):
        claims = dict(tiny_dataset.claims)
        claims[("w1", "t0")] = "Z"
        with pytest.raises(DataFormatError):
            tiny_dataset.with_claims(claims)

    def test_empty_claim_value_rejected(self, tiny_dataset):
        claims = dict(tiny_dataset.claims)
        claims[("w1", "t0")] = ""
        with pytest.raises(DataFormatError):
            tiny_dataset.with_claims(claims)

    def test_copier_source_must_exist(self):
        worker = WorkerProfile(
            worker_id="w", is_copier=True, sources=("ghost",)
        )
        with pytest.raises(DataFormatError):
            Dataset(tasks=(), workers=(worker,), claims={})

    def test_subset_tasks(self, tiny_dataset):
        sub = tiny_dataset.subset(task_ids=["t0", "t1"])
        assert sub.n_tasks == 2
        assert all(t in ("t0", "t1") for (_, t) in sub.claims)
        assert sub.n_workers == 5

    def test_subset_workers_drops_lost_sources(self, tiny_dataset):
        sub = tiny_dataset.subset(worker_ids=["w1", "w4"])
        w4 = sub.worker_by_id["w4"]
        # w4's source w3 was dropped, so w4 is no longer a copier.
        assert not w4.is_copier
        assert w4.sources == ()

    def test_subset_unknown_ids_rejected(self, tiny_dataset):
        with pytest.raises(DataFormatError):
            tiny_dataset.subset(task_ids=["nope"])
        with pytest.raises(DataFormatError):
            tiny_dataset.subset(worker_ids=["nope"])

    def test_bids_default_to_costs(self, tiny_dataset):
        bids = tiny_dataset.bids()
        by_id = {b.worker_id: b for b in bids}
        assert by_id["w1"].price == 2.0
        assert by_id["w5"].task_ids == frozenset({"t0", "t1"})

    def test_bids_price_override(self, tiny_dataset):
        bids = tiny_dataset.bids(prices={"w1": 9.0})
        by_id = {b.worker_id: b for b in bids}
        assert by_id["w1"].price == 9.0
        assert by_id["w2"].price == 3.0

    def test_workers_without_claims_submit_no_bid(self):
        tasks = (Task(task_id="t0", domain=("A",)),)
        workers = (
            WorkerProfile(worker_id="busy"),
            WorkerProfile(worker_id="idle"),
        )
        dataset = Dataset(
            tasks=tasks, workers=workers, claims={("busy", "t0"): "A"}
        )
        assert [b.worker_id for b in dataset.bids()] == ["busy"]
