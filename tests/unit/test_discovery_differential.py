"""Differential pins: the zoo adapters change nothing.

The DATE/MV/NC/ED adapters must be bit-identical to calling the
engines directly — the interface is a veneer, not a reimplementation.
Covers both entry points (dataset-level ``run`` and array-level
``fit``) and the warm-start/lean pass-through of the DATE family.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import EnumerateDependence, MajorityVote, NoCopier
from repro.core.config import DateConfig
from repro.core.date import DATE
from repro.core.indexing import DatasetIndex
from repro.discovery import make_discoverer

_ENGINES = {
    "DATE": lambda cfg: DATE(cfg),
    "MV": lambda cfg: MajorityVote(),
    "NC": lambda cfg: NoCopier(cfg),
    "ED": lambda cfg: EnumerateDependence(cfg),
}


def _assert_same(a, b):
    assert a.truths == b.truths
    assert a.worker_accuracy == b.worker_accuracy
    assert a.confidence == b.confidence
    assert a.support == b.support
    assert a.dependence == b.dependence
    assert np.array_equal(a.accuracy_matrix, b.accuracy_matrix)
    assert a.iterations == b.iterations
    assert a.converged == b.converged
    assert a.method == b.method
    assert a.worker_ids == b.worker_ids
    assert a.task_ids == b.task_ids


@pytest.mark.parametrize("name", sorted(_ENGINES))
class TestAdapterDifferential:
    def test_run_bit_identical_to_engine(self, name, qlf_small):
        config = DateConfig(copy_prob_r=0.6)
        index = DatasetIndex(qlf_small)
        engine_result = _ENGINES[name](config).run(qlf_small, index=index)
        adapter_result = make_discoverer(name, date_config=config).run(
            qlf_small, index=index
        )
        _assert_same(engine_result, adapter_result)

    def test_fit_bit_identical_to_engine(self, name, qlf_small):
        config = DateConfig(copy_prob_r=0.6)
        index = DatasetIndex(qlf_small)
        engine_result = _ENGINES[name](config).run(qlf_small, index=index)
        adapter_result = make_discoverer(name, date_config=config).fit(
            index.arrays
        )
        _assert_same(engine_result, adapter_result)


@pytest.mark.parametrize("name", ("DATE", "ED"))
def test_warm_start_and_lean_pass_through(name, qlf_small):
    config = DateConfig(copy_prob_r=0.6)
    index = DatasetIndex(qlf_small)
    warm = _ENGINES[name](config).run(qlf_small, index=index)
    engine_result = _ENGINES[name](config).run(
        qlf_small, index=index, warm_start=warm, lean=True
    )
    adapter_result = make_discoverer(name, date_config=config).run(
        qlf_small, index=index, warm_start=warm, lean=True
    )
    _assert_same(engine_result, adapter_result)
