"""Unit tests for Alg. 2 (repro.auction.reverse_auction)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    ConfigurationError,
    InfeasibleCoverageError,
    ReverseAuction,
    SOACInstance,
)
from repro.auction.reverse_auction import greedy_cover


def instance_from(
    accuracy, bids, requirements, costs=None, values=None
) -> SOACInstance:
    accuracy = np.asarray(accuracy, dtype=float)
    n, m = accuracy.shape
    bids = np.asarray(bids, dtype=float)
    return SOACInstance(
        worker_ids=tuple(f"w{i}" for i in range(n)),
        task_ids=tuple(f"t{j}" for j in range(m)),
        requirements=np.asarray(requirements, dtype=float),
        accuracy=accuracy,
        bids=bids,
        costs=np.asarray(costs, dtype=float) if costs is not None else bids.copy(),
        task_values=np.asarray(values, dtype=float)
        if values is not None
        else np.full(m, 5.0),
    )


class TestGreedyCover:
    def test_prefers_effective_unit_cost(self, soac_small):
        # w3 covers 3 units for bid 2 (ratio 2/3) vs specialists at 1.
        selection = greedy_cover(soac_small)
        assert [w for w, _ in selection] == [3]

    def test_specialists_win_when_generalist_overpriced(self):
        instance = instance_from(
            accuracy=[[1, 0], [0, 1], [1, 1]],
            bids=[1.0, 1.0, 5.0],
            requirements=[1.0, 1.0],
        )
        selection = [w for w, _ in greedy_cover(instance)]
        assert sorted(selection) == [0, 1]

    def test_residuals_recorded_before_selection(self, soac_small):
        selection = greedy_cover(soac_small)
        _, residual = selection[0]
        assert np.allclose(residual, [1.0, 1.0, 1.0])

    def test_exclusion(self, soac_small):
        selection = greedy_cover(soac_small, exclude=3)
        assert sorted(w for w, _ in selection) == [0, 1, 2]

    def test_infeasible_raises(self):
        instance = instance_from(
            accuracy=[[0.5, 0.0]],
            bids=[1.0],
            requirements=[1.0, 1.0],
        )
        with pytest.raises(InfeasibleCoverageError):
            greedy_cover(instance)

    def test_marginal_coverage_is_capped(self):
        """A worker's usefulness is min(residual, accuracy) summed —
        surplus accuracy on an almost-covered task must not count."""
        instance = instance_from(
            # w0 floods t0 far beyond its requirement; w1 covers both.
            accuracy=[[1.0, 0.0], [0.6, 0.6]],
            bids=[1.0, 1.3],
            requirements=[0.5, 0.5],
        )
        selection = [w for w, _ in greedy_cover(instance)]
        # w0's marginal is min(0.5, 1.0) = 0.5 -> ratio 2.0;
        # w1's marginal is 1.0 -> ratio 1.3; w1 must go first.
        assert selection[0] == 1


class TestReverseAuction:
    def test_winner_set_covers(self, soac_medium):
        outcome = ReverseAuction().run(soac_medium)
        assert soac_medium.is_covering(outcome.winner_indexes)

    def test_payments_cover_bids(self, soac_medium):
        """Critical payments are never below the winner's own bid
        (individual rationality under truthful bidding, Lemma 2)."""
        outcome = ReverseAuction().run(soac_medium)
        bid_by_id = dict(zip(soac_medium.worker_ids, soac_medium.bids))
        for worker_id in outcome.winner_ids:
            assert outcome.payments[worker_id] >= bid_by_id[worker_id] - 1e-9

    def test_losers_get_nothing(self, soac_medium):
        outcome = ReverseAuction().run(soac_medium)
        losers = set(soac_medium.worker_ids) - set(outcome.winner_ids)
        for worker_id in losers:
            assert outcome.payment_of(worker_id) == 0.0
            assert outcome.utility_of(worker_id, cost=3.0) == 0.0

    def test_social_cost_uses_costs_not_bids(self):
        instance = instance_from(
            accuracy=[[1.0], [1.0]],
            bids=[1.0, 2.0],
            requirements=[1.0],
            costs=[0.5, 2.0],
        )
        outcome = ReverseAuction().run(instance)
        assert outcome.winner_ids == ("w0",)
        assert outcome.social_cost == pytest.approx(0.5)

    def test_monopolist_flagged_and_paid(self):
        instance = instance_from(
            # Only w0 can cover t1.
            accuracy=[[1.0, 1.0], [1.0, 0.0]],
            bids=[2.0, 1.0],
            requirements=[1.0, 1.0],
        )
        outcome = ReverseAuction(monopoly_payment_factor=1.5).run(instance)
        assert "w0" in outcome.monopolists
        assert outcome.payments["w0"] == pytest.approx(3.0)

    def test_monopoly_factor_validated(self):
        with pytest.raises(ConfigurationError):
            ReverseAuction(monopoly_payment_factor=0.5)

    def test_infeasible_instance_raises(self):
        instance = instance_from(
            accuracy=[[0.2]],
            bids=[1.0],
            requirements=[1.0],
        )
        with pytest.raises(InfeasibleCoverageError):
            ReverseAuction().run(instance)

    def test_critical_payment_hand_computed(self):
        """Two identical single-task workers: the winner's critical
        value is the loser's bid."""
        instance = instance_from(
            accuracy=[[1.0], [1.0]],
            bids=[1.0, 4.0],
            requirements=[1.0],
        )
        outcome = ReverseAuction().run(instance)
        assert outcome.winner_ids == ("w0",)
        assert outcome.payments["w0"] == pytest.approx(4.0)

    def test_critical_payment_scales_with_coverage(self):
        """Replacement covers less, so the winner's payment scales up by
        the coverage ratio (Alg. 2 line 15)."""
        instance = instance_from(
            accuracy=[[1.0, 1.0], [0.5, 0.5], [0.5, 0.5]],
            bids=[1.5, 1.0, 1.0],
            requirements=[1.0, 1.0],
        )
        outcome = ReverseAuction().run(instance)
        # w0 ratio: 1.5/2 = 0.75 beats 1.0/1.0; w0 wins alone.
        assert outcome.winner_ids == ("w0",)
        # Without w0: w1 then w2 are selected, each covering 1.0 while
        # w0 would cover 2.0 -> payment max(1.0 * 2/1, 1.0 * 1/1) = 2.0.
        assert outcome.payments["w0"] == pytest.approx(2.0)

    def test_total_payment_consistent(self, soac_medium):
        outcome = ReverseAuction().run(soac_medium)
        assert outcome.total_payment == pytest.approx(
            sum(outcome.payments.values())
        )

    def test_selection_order_preserved(self, soac_medium):
        outcome = ReverseAuction().run(soac_medium)
        assert len(outcome.winner_ids) == len(outcome.winner_indexes)
        for worker_id, index in zip(outcome.winner_ids, outcome.winner_indexes):
            assert soac_medium.worker_ids[index] == worker_id
