"""Unit tests for the IMC2 orchestrator (repro.mechanism.imc2)."""

from __future__ import annotations

import pytest

from repro import IMC2, DateConfig, MajorityVote, ReverseAuction


class TestIMC2:
    def test_end_to_end_outcome(self, qlf_small):
        outcome = IMC2().run(qlf_small)
        assert outcome.truth.method == "DATE"
        assert outcome.auction.method == "RA"
        assert len(outcome.winners) > 0
        assert outcome.instance.is_covering(outcome.auction.winner_indexes)

    def test_worker_utilities(self, qlf_small):
        outcome = IMC2().run(qlf_small)
        winners = set(outcome.winners)
        for worker_id, utility in outcome.worker_utilities.items():
            if worker_id in winners:
                # IR under truthful bidding: non-negative utility.
                assert utility >= -1e-9
            else:
                assert utility == 0.0

    def test_welfare_accounting(self, qlf_small):
        outcome = IMC2().run(qlf_small)
        value = outcome.instance.platform_value(outcome.auction.winner_indexes)
        assert outcome.platform_utility == pytest.approx(
            value - outcome.auction.total_payment
        )
        assert outcome.social_welfare == pytest.approx(
            value - outcome.auction.social_cost
        )
        # Payments >= costs for winners, so the platform keeps less than
        # the social welfare.
        assert outcome.platform_utility <= outcome.social_welfare + 1e-9

    def test_estimated_truths_exposed(self, qlf_small):
        outcome = IMC2().run(qlf_small)
        assert outcome.estimated_truths == outcome.truth.truths

    def test_custom_truth_algorithm(self, qlf_small):
        outcome = IMC2(truth_algorithm=MajorityVote()).run(qlf_small)
        assert outcome.truth.method == "MV"

    def test_custom_date_config(self, qlf_small):
        outcome = IMC2(DateConfig(copy_prob_r=0.6)).run(qlf_small)
        assert outcome.truth.method == "DATE"

    def test_requirement_override(self, qlf_small):
        # Tiny requirements -> fewer winners needed.
        overrides = {t.task_id: 0.2 for t in qlf_small.tasks}
        small = IMC2().run(qlf_small, requirements=overrides)
        full = IMC2().run(qlf_small)
        assert small.auction.social_cost <= full.auction.social_cost + 1e-9

    def test_bid_override_changes_instance(self, qlf_small):
        bidder = qlf_small.bids()[0].worker_id
        bids = qlf_small.bids(prices={bidder: 0.01})
        outcome = IMC2().run(qlf_small, bids=bids)
        i = outcome.instance.worker_ids.index(bidder)
        assert outcome.instance.bids[i] == pytest.approx(0.01)
        # True cost is unchanged by a strategic bid.
        assert outcome.instance.costs[i] == pytest.approx(
            qlf_small.worker_by_id[bidder].cost
        )

    def test_custom_auction(self, qlf_small):
        outcome = IMC2(auction=ReverseAuction(monopoly_payment_factor=2.0)).run(
            qlf_small
        )
        assert outcome.auction.method == "RA"
