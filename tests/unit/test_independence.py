"""Unit tests for independence probabilities and ordering (repro.core.independence)."""

from __future__ import annotations

import pytest

from repro.core import DatasetIndex
from repro.core.dependence import DependencePosterior, compute_pairwise_dependence
from repro.core.independence import (
    independence_probabilities,
    order_value_group,
)


def posteriors_with(pairs: dict[tuple[int, int], tuple[float, float]]):
    return {
        key: DependencePosterior(p_a_to_b=ab, p_b_to_a=ba)
        for key, (ab, ba) in pairs.items()
    }


class TestOrdering:
    def test_single_worker_group(self):
        assert order_value_group((7,), {}) == [7]

    def test_dependent_first_puts_hub_first(self):
        # Worker 0 is strongly connected to both 1 and 2.
        posteriors = posteriors_with(
            {(0, 1): (0.4, 0.4), (0, 2): (0.4, 0.4), (1, 2): (0.05, 0.05)}
        )
        order = order_value_group((0, 1, 2), posteriors, ordering="dependent_first")
        assert order[0] == 0

    def test_independent_first_puts_loner_first(self):
        posteriors = posteriors_with(
            {(0, 1): (0.4, 0.4), (0, 2): (0.4, 0.4), (1, 2): (0.05, 0.05)}
        )
        order = order_value_group(
            (0, 1, 2), posteriors, ordering="independent_first"
        )
        assert order[0] in (1, 2)

    def test_subsequent_picks_by_attachment(self):
        # After the hub 0, worker 2 has the stronger directed link to 0.
        posteriors = posteriors_with(
            {(0, 1): (0.3, 0.1), (0, 2): (0.3, 0.5), (1, 2): (0.0, 0.0)}
        )
        # directed P(1->0) = p_b_to_a of pair (0,1) = 0.1
        # directed P(2->0) = p_b_to_a of pair (0,2) = 0.5
        order = order_value_group((0, 1, 2), posteriors, ordering="dependent_first")
        assert order[0] == 0
        assert order[1] == 2

    def test_tie_breaks_deterministic(self):
        order_a = order_value_group((3, 1, 2), {})
        order_b = order_value_group((1, 2, 3), {})
        assert order_a == order_b

    def test_unknown_ordering_rejected(self):
        with pytest.raises(ValueError):
            order_value_group((0, 1), {}, ordering="alphabetical")


class TestIndependenceTable:
    def test_first_worker_fully_independent(self, tiny_dataset):
        index = DatasetIndex(tiny_dataset)
        accuracy = index.initial_accuracy_matrix(0.5)
        deps = compute_pairwise_dependence(
            index,
            index.majority_vote(),
            accuracy,
            copy_prob_r=0.6,
            prior_alpha=0.3,
        )
        table = independence_probabilities(index, deps, copy_prob_r=0.6)
        for j in range(index.n_tasks):
            for value, scores in table[j].items():
                assert max(scores.values()) == pytest.approx(1.0)

    def test_scores_in_unit_interval(self, tiny_dataset):
        index = DatasetIndex(tiny_dataset)
        accuracy = index.initial_accuracy_matrix(0.5)
        deps = compute_pairwise_dependence(
            index,
            index.majority_vote(),
            accuracy,
            copy_prob_r=0.6,
            prior_alpha=0.3,
        )
        table = independence_probabilities(index, deps, copy_prob_r=0.6)
        for per_value in table:
            for scores in per_value.values():
                for score in scores.values():
                    assert 0.0 < score <= 1.0

    def test_covers_every_provider(self, tiny_dataset):
        index = DatasetIndex(tiny_dataset)
        table = independence_probabilities(index, {}, copy_prob_r=0.4)
        for j in range(index.n_tasks):
            assert set(table[j]) == set(index.value_groups[j])
            for value, group in index.value_groups[j].items():
                assert set(table[j][value]) == set(group)

    def test_no_dependence_means_no_discount(self, tiny_dataset):
        index = DatasetIndex(tiny_dataset)
        table = independence_probabilities(index, {}, copy_prob_r=0.4)
        for per_value in table:
            for scores in per_value.values():
                assert all(score == 1.0 for score in scores.values())

    def test_total_mode_discounts_at_least_as_much(self, tiny_dataset):
        index = DatasetIndex(tiny_dataset)
        accuracy = index.initial_accuracy_matrix(0.5)
        deps = compute_pairwise_dependence(
            index,
            index.majority_vote(),
            accuracy,
            copy_prob_r=0.8,
            prior_alpha=0.3,
        )
        directed = independence_probabilities(
            index, deps, copy_prob_r=0.8, discount_mode="directed"
        )
        total = independence_probabilities(
            index, deps, copy_prob_r=0.8, discount_mode="total"
        )
        for j in range(index.n_tasks):
            for value in directed[j]:
                for worker in directed[j][value]:
                    assert total[j][value][worker] <= directed[j][value][worker] + 1e-12

    def test_copier_discounted_in_tiny_dataset(self, tiny_dataset):
        """On t1 (w3, w4 share the false 'B'), the later of the pair
        must receive a real discount."""
        index = DatasetIndex(tiny_dataset)
        accuracy = index.initial_accuracy_matrix(0.5)
        deps = compute_pairwise_dependence(
            index, ["A"] * 4, accuracy, copy_prob_r=0.8, prior_alpha=0.2
        )
        table = independence_probabilities(index, deps, copy_prob_r=0.8)
        b_scores = table[1]["B"]  # workers 2 and 3 (w3, w4)
        assert min(b_scores.values()) < 0.8
        assert max(b_scores.values()) == pytest.approx(1.0)

    def test_invalid_r_rejected(self, tiny_dataset):
        index = DatasetIndex(tiny_dataset)
        with pytest.raises(ValueError):
            independence_probabilities(index, {}, copy_prob_r=0.0)

    def test_invalid_mode_rejected(self, tiny_dataset):
        index = DatasetIndex(tiny_dataset)
        with pytest.raises(ValueError):
            independence_probabilities(
                index, {}, copy_prob_r=0.4, discount_mode="both"
            )
