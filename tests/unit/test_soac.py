"""Unit tests for the SOAC instance model (repro.auction.soac)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    DATE,
    ConfigurationError,
    InfeasibleCoverageError,
    SOACInstance,
)


class TestValidation:
    def test_shape_mismatch_rejected(self, soac_small):
        with pytest.raises(ConfigurationError):
            SOACInstance(
                worker_ids=soac_small.worker_ids,
                task_ids=soac_small.task_ids,
                requirements=np.array([1.0]),  # wrong length
                accuracy=soac_small.accuracy,
                bids=soac_small.bids,
                costs=soac_small.costs,
                task_values=soac_small.task_values,
            )

    def test_accuracy_bounds_checked(self, soac_small):
        bad = soac_small.accuracy.copy()
        bad[0, 0] = 1.5
        with pytest.raises(ConfigurationError):
            SOACInstance(
                worker_ids=soac_small.worker_ids,
                task_ids=soac_small.task_ids,
                requirements=soac_small.requirements,
                accuracy=bad,
                bids=soac_small.bids,
                costs=soac_small.costs,
                task_values=soac_small.task_values,
            )

    def test_negative_bid_rejected(self, soac_small):
        bad = soac_small.bids.copy()
        bad[0] = -1.0
        with pytest.raises(ConfigurationError):
            SOACInstance(
                worker_ids=soac_small.worker_ids,
                task_ids=soac_small.task_ids,
                requirements=soac_small.requirements,
                accuracy=soac_small.accuracy,
                bids=bad,
                costs=soac_small.costs,
                task_values=soac_small.task_values,
            )


class TestQueries:
    def test_coverage(self, soac_small):
        assert np.allclose(soac_small.coverage([3]), [1.0, 1.0, 1.0])
        assert np.allclose(soac_small.coverage([0, 1]), [1.0, 1.0, 0.0])
        assert np.allclose(soac_small.coverage([]), [0.0, 0.0, 0.0])

    def test_is_covering(self, soac_small):
        assert soac_small.is_covering([3])
        assert soac_small.is_covering([0, 1, 2])
        assert not soac_small.is_covering([0, 1])

    def test_uncovered_tasks(self, soac_small):
        assert soac_small.uncovered_tasks([0, 1]) == ("t2",)
        assert soac_small.uncovered_tasks([3]) == ()

    def test_feasibility(self, soac_small):
        assert soac_small.is_feasible
        soac_small.check_feasible()  # must not raise

    def test_infeasible_detection(self, soac_small):
        bumped = SOACInstance(
            worker_ids=soac_small.worker_ids,
            task_ids=soac_small.task_ids,
            requirements=np.array([10.0, 1.0, 1.0]),
            accuracy=soac_small.accuracy,
            bids=soac_small.bids,
            costs=soac_small.costs,
            task_values=soac_small.task_values,
        )
        assert not bumped.is_feasible
        with pytest.raises(InfeasibleCoverageError) as exc:
            bumped.check_feasible()
        assert exc.value.task_ids == ("t0",)

    def test_social_cost(self, soac_small):
        assert soac_small.social_cost([0, 3]) == pytest.approx(3.0)
        assert soac_small.social_cost([]) == 0.0

    def test_platform_value(self, soac_small):
        assert soac_small.platform_value([3]) == pytest.approx(15.0)
        assert soac_small.platform_value([0]) == 0.0  # not covering


class TestTransformations:
    def test_with_bid(self, soac_small):
        changed = soac_small.with_bid(0, 9.0)
        assert changed.bids[0] == 9.0
        assert soac_small.bids[0] == 1.0  # original untouched
        assert changed.costs[0] == soac_small.costs[0]  # cost unchanged

    def test_with_bid_negative_rejected(self, soac_small):
        with pytest.raises(ConfigurationError):
            soac_small.with_bid(0, -1.0)

    def test_without_worker(self, soac_small):
        reduced = soac_small.without_worker(3)
        assert reduced.n_workers == 3
        assert "w3" not in reduced.worker_ids
        assert not reduced.is_covering(range(reduced.n_workers)) or True

    def test_with_capped_requirements(self, soac_small):
        bumped = SOACInstance(
            worker_ids=soac_small.worker_ids,
            task_ids=soac_small.task_ids,
            requirements=np.array([10.0, 1.0, 1.0]),
            accuracy=soac_small.accuracy,
            bids=soac_small.bids,
            costs=soac_small.costs,
            task_values=soac_small.task_values,
        )
        capped = bumped.with_capped_requirements(0.5)
        # t0's available accuracy is 2.0 -> capped at 1.0.
        assert capped.requirements[0] == pytest.approx(1.0)
        assert capped.requirements[1] == pytest.approx(1.0)
        assert capped.is_feasible

    def test_cap_fraction_validated(self, soac_small):
        with pytest.raises(ConfigurationError):
            soac_small.with_capped_requirements(0.0)


class TestFromTruthDiscovery:
    def test_pipeline_construction(self, qlf_small):
        result = DATE().run(qlf_small)
        instance = SOACInstance.from_truth_discovery(qlf_small, result)
        bidders = {b.worker_id for b in qlf_small.bids()}
        assert set(instance.worker_ids) == bidders
        assert instance.n_tasks == qlf_small.n_tasks
        # Bids default to true costs (truthful bidding).
        for i, worker_id in enumerate(instance.worker_ids):
            assert instance.bids[i] == pytest.approx(
                qlf_small.worker_by_id[worker_id].cost
            )

    def test_accuracy_zero_outside_bid_tasks(self, qlf_small):
        result = DATE().run(qlf_small)
        instance = SOACInstance.from_truth_discovery(qlf_small, result)
        claims = qlf_small.claims_by_worker
        for i, worker_id in enumerate(instance.worker_ids):
            answered = set(claims[worker_id])
            for j, task_id in enumerate(instance.task_ids):
                if task_id not in answered:
                    assert instance.accuracy[i, j] == 0.0

    def test_requirement_override(self, qlf_small):
        result = DATE().run(qlf_small)
        overrides = {qlf_small.tasks[0].task_id: 0.25}
        instance = SOACInstance.from_truth_discovery(
            qlf_small, result, requirements=overrides
        )
        assert instance.requirements[0] == pytest.approx(0.25)
