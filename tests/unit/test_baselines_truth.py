"""Unit tests for the truth-discovery baselines MV / NC / ED."""

from __future__ import annotations

import pytest

from repro import DATE, DateConfig, EnumerateDependence, MajorityVote, NoCopier
from repro.baselines.enumerate_dependence import (
    _closed_form_independence,
    _enumerated_independence,
)
from repro.core import DatasetIndex


class TestMajorityVote:
    def test_method_name(self, tiny_dataset):
        assert MajorityVote().run(tiny_dataset).method == "MV"

    def test_counts_votes(self, tiny_dataset):
        result = MajorityVote().run(tiny_dataset)
        assert result.truths["t1"] == "A"  # 3 vs 2
        assert result.truths["t0"] == "A"  # unanimous

    def test_fooled_by_tie_with_copier(self, tiny_dataset):
        # t2/t3: A (w1, w2) ties B (w3, w4); lexicographic rescue only.
        result = MajorityVote().run(tiny_dataset)
        assert result.truths["t2"] == "A"

    def test_agreement_accuracy(self, tiny_dataset):
        result = MajorityVote().run(tiny_dataset)
        assert result.worker_accuracy["w1"] == pytest.approx(1.0)
        assert result.worker_accuracy["w3"] == pytest.approx(0.25)

    def test_confidence_is_vote_share(self, tiny_dataset):
        result = MajorityVote().run(tiny_dataset)
        assert result.confidence["t1"] == pytest.approx(3 / 5)

    def test_single_iteration(self, tiny_dataset):
        result = MajorityVote().run(tiny_dataset)
        assert result.iterations == 1
        assert result.converged

    def test_no_dependence_reported(self, tiny_dataset):
        assert MajorityVote().run(tiny_dataset).dependence == {}


class TestNoCopier:
    def test_method_name(self, tiny_dataset):
        assert NoCopier().run(tiny_dataset).method == "NC"

    def test_no_dependence_reported(self, tiny_dataset):
        assert NoCopier().run(tiny_dataset).dependence == {}

    def test_converges(self, qlf_small):
        result = NoCopier().run(qlf_small)
        assert result.converged

    def test_beats_mv_on_reliability_spread_without_copiers(self):
        """Accuracy-aware voting helps when reliabilities vary — on
        copier-FREE data.  (With clustered copiers NC can fall below MV:
        the self-agreeing cluster earns spuriously high accuracy, which
        is exactly the failure mode the paper's DATE addresses.)"""
        from repro.datasets import generate_qatar_living_like

        mv_total, nc_total = 0.0, 0.0
        for seed in range(3):
            dataset = generate_qatar_living_like(
                seed=seed,
                n_tasks=40,
                n_workers=24,
                n_copiers=0,
                target_claims=600,
            )
            mv_total += MajorityVote().run(dataset).precision()
            nc_total += NoCopier().run(dataset).precision()
        assert nc_total >= mv_total - 0.02

    def test_respects_config(self, tiny_dataset):
        result = NoCopier(DateConfig(max_iterations=1)).run(tiny_dataset)
        assert result.iterations == 1


class TestEnumerationHelpers:
    def test_enumeration_matches_closed_form(self):
        probs = [0.1, 0.35, 0.8]
        assert _enumerated_independence(probs) == pytest.approx(
            _closed_form_independence(probs)
        )

    def test_empty_edge_list(self):
        assert _enumerated_independence([]) == pytest.approx(1.0)
        assert _closed_form_independence([]) == pytest.approx(1.0)

    def test_certain_copy_kills_independence(self):
        assert _enumerated_independence([1.0]) == pytest.approx(0.0)


class TestEnumerateDependence:
    def test_method_name(self, tiny_dataset):
        assert EnumerateDependence().run(tiny_dataset).method == "ED"

    def test_limit_validation(self):
        with pytest.raises(Exception):
            EnumerateDependence(exact_enumeration_limit=-1)

    def test_closed_form_fallback_same_truths(self, tiny_dataset):
        exact = EnumerateDependence(exact_enumeration_limit=16).run(tiny_dataset)
        fallback = EnumerateDependence(exact_enumeration_limit=0).run(tiny_dataset)
        assert exact.truths == fallback.truths

    def test_discounts_against_all_coproviders(self, tiny_dataset):
        """ED discounts both members of a perfectly-agreeing pair,
        whereas DATE leaves the first in the greedy order undiscounted."""
        import warnings

        config = DateConfig(copy_prob_r=0.8, prior_alpha=0.3, max_iterations=1)
        index = DatasetIndex(tiny_dataset)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            date_result = DATE(config).run(tiny_dataset, index=index)
            ed_result = EnumerateDependence(config).run(tiny_dataset, index=index)
        # Support of the copied value B on t2 must be weaker under ED.
        assert ed_result.support["t2"]["B"] <= date_result.support["t2"]["B"] + 1e-9

    def test_recovers_truth_on_copier_data(self, tiny_dataset):
        config = DateConfig(copy_prob_r=0.8, prior_alpha=0.3)
        result = EnumerateDependence(config).run(tiny_dataset)
        assert result.precision() == 1.0


class TestCrossAlgorithm:
    def test_date_at_least_as_good_as_mv_on_qlf(self, qlf_small):
        index = DatasetIndex(qlf_small)
        mv = MajorityVote().run(qlf_small, index=index).precision()
        date = DATE().run(qlf_small, index=index).precision()
        assert date >= mv

    def test_all_report_comparable_structures(self, qlf_small):
        index = DatasetIndex(qlf_small)
        for algo in (MajorityVote(), NoCopier(), DATE(), EnumerateDependence()):
            result = algo.run(qlf_small, index=index)
            assert set(result.truths).issubset({t.task_id for t in qlf_small.tasks})
            assert result.accuracy_matrix.shape == (
                qlf_small.n_workers,
                qlf_small.n_tasks,
            )
