"""Unit tests for the CLI subcommands (repro.__main__)."""

from __future__ import annotations

import pytest

from repro.__main__ import main
from repro.datasets import load_dataset


@pytest.fixture
def campaign_dir(tmp_path):
    """A small generated campaign on disk."""
    directory = tmp_path / "campaign"
    code = main(
        [
            "generate",
            str(directory),
            "--tasks", "24",
            "--workers", "14",
            "--copiers", "3",
            "--claims", "200",
            "--seed", "11",
        ]
    )
    assert code == 0
    return directory


class TestGenerate:
    def test_writes_loadable_dataset(self, campaign_dir):
        dataset = load_dataset(campaign_dir)
        assert dataset.n_tasks == 24
        assert dataset.n_workers == 14
        assert sum(1 for w in dataset.workers if w.is_copier) == 3

    def test_seed_reproducible(self, tmp_path):
        for name in ("a", "b"):
            main(
                [
                    "generate",
                    str(tmp_path / name),
                    "--tasks", "10",
                    "--workers", "8",
                    "--copiers", "2",
                    "--claims", "60",
                    "--seed", "3",
                ]
            )
        assert load_dataset(tmp_path / "a").claims == load_dataset(
            tmp_path / "b"
        ).claims

    def test_prints_summary(self, campaign_dir, capsys):
        # fixture already ran; grab its output via a fresh call
        main(["generate", str(campaign_dir), "--tasks", "24", "--workers", "14",
              "--copiers", "3", "--claims", "200", "--seed", "11"])
        out = capsys.readouterr().out
        assert "24 tasks" in out
        assert "3 copiers" in out


class TestTruth:
    @pytest.mark.parametrize("algorithm", ["DATE", "MV", "NC", "ED"])
    def test_all_algorithms(self, campaign_dir, capsys, algorithm):
        code = main(
            ["truth", str(campaign_dir), "--algorithm", algorithm, "--limit", "5"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert f"algorithm: {algorithm}" in out
        assert "precision:" in out

    def test_hyperparameters_accepted(self, campaign_dir, capsys):
        code = main(
            [
                "truth",
                str(campaign_dir),
                "--r", "0.6",
                "--alpha", "0.3",
                "--epsilon", "0.7",
            ]
        )
        assert code == 0


class TestAuction:
    def test_prints_winners_and_welfare(self, campaign_dir, capsys):
        code = main(["auction", str(campaign_dir), "--cap", "0.7"])
        assert code == 0
        out = capsys.readouterr().out
        assert "winners:" in out
        assert "social cost:" in out
        assert "platform utility:" in out

    def test_cap_defaults_to_raw_requirements(self, campaign_dir):
        from repro.errors import InfeasibleCoverageError

        # The tiny campaign cannot cover raw U[2,4] requirements; the
        # CLI surfaces the library error rather than hiding it.
        with pytest.raises(InfeasibleCoverageError):
            main(["auction", str(campaign_dir)])


class TestIngest:
    def test_local_replay(self, campaign_dir, capsys):
        code = main(["ingest", str(campaign_dir), "--batches", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "batch" in out
        assert "after 4 batches" in out
        assert "precision:" in out

    def test_replay_against_live_server(self, campaign_dir, capsys):
        import threading

        from repro.streaming import StreamingApp, make_server

        server = make_server(StreamingApp(), port=0)
        port = server.server_address[1]
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            # An id with a space exercises the URL quoting path.
            code = main(
                [
                    "ingest",
                    str(campaign_dir),
                    "--batches", "3",
                    "--campaign", "cli replay",
                    "--url", f"http://127.0.0.1:{port}",
                ]
            )
            assert code == 0
            out = capsys.readouterr().out
            assert "cli replay" in out
            assert "after 3 batches" in out
        finally:
            server.shutdown()
            server.server_close()


class TestAblationExperiment:
    def test_registered_and_runs(self, capsys):
        from repro.experiments import run_experiment
        from repro.experiments.common import ScalePreset

        tiny = ScalePreset(
            name="tiny",
            n_tasks=20,
            n_workers=12,
            n_copiers=3,
            target_claims=140,
            instances=1,
        )
        result = run_experiment(
            "ablation",
            scale=tiny,
            variants={"default": {}, "literal": {"discounted_posterior": False}},
        )
        assert result.meta["variants"] == ["default", "literal"]
        assert len(result.y("precision")) == 2
