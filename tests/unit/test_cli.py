"""Unit tests for the CLI subcommands (repro.__main__)."""

from __future__ import annotations

import json

import pytest

from repro.__main__ import main
from repro.datasets import load_dataset


@pytest.fixture
def campaign_dir(tmp_path):
    """A small generated campaign on disk."""
    directory = tmp_path / "campaign"
    code = main(
        [
            "generate",
            str(directory),
            "--tasks", "24",
            "--workers", "14",
            "--copiers", "3",
            "--claims", "200",
            "--seed", "11",
        ]
    )
    assert code == 0
    return directory


class TestGenerate:
    def test_writes_loadable_dataset(self, campaign_dir):
        dataset = load_dataset(campaign_dir)
        assert dataset.n_tasks == 24
        assert dataset.n_workers == 14
        assert sum(1 for w in dataset.workers if w.is_copier) == 3

    def test_seed_reproducible(self, tmp_path):
        for name in ("a", "b"):
            main(
                [
                    "generate",
                    str(tmp_path / name),
                    "--tasks", "10",
                    "--workers", "8",
                    "--copiers", "2",
                    "--claims", "60",
                    "--seed", "3",
                ]
            )
        assert load_dataset(tmp_path / "a").claims == load_dataset(
            tmp_path / "b"
        ).claims

    def test_prints_summary(self, campaign_dir, capsys):
        # fixture already ran; grab its output via a fresh call
        main(["generate", str(campaign_dir), "--tasks", "24", "--workers", "14",
              "--copiers", "3", "--claims", "200", "--seed", "11"])
        out = capsys.readouterr().out
        assert "24 tasks" in out
        assert "3 copiers" in out


class TestTruth:
    @pytest.mark.parametrize("algorithm", ["DATE", "MV", "NC", "ED"])
    def test_all_algorithms(self, campaign_dir, capsys, algorithm):
        code = main(
            ["truth", str(campaign_dir), "--algorithm", algorithm, "--limit", "5"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert f"algorithm: {algorithm}" in out
        assert "precision:" in out

    def test_hyperparameters_accepted(self, campaign_dir, capsys):
        code = main(
            [
                "truth",
                str(campaign_dir),
                "--r", "0.6",
                "--alpha", "0.3",
                "--epsilon", "0.7",
            ]
        )
        assert code == 0


class TestAuction:
    def test_prints_winners_and_welfare(self, campaign_dir, capsys):
        code = main(["auction", str(campaign_dir), "--cap", "0.7"])
        assert code == 0
        out = capsys.readouterr().out
        assert "winners:" in out
        assert "social cost:" in out
        assert "platform utility:" in out

    def test_cap_defaults_to_raw_requirements(self, campaign_dir):
        from repro.errors import InfeasibleCoverageError

        # The tiny campaign cannot cover raw U[2,4] requirements; the
        # CLI surfaces the library error rather than hiding it.
        with pytest.raises(InfeasibleCoverageError):
            main(["auction", str(campaign_dir)])


class TestIngest:
    def test_local_replay(self, campaign_dir, capsys):
        code = main(["ingest", str(campaign_dir), "--batches", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "batch" in out
        assert "after 4 batches" in out
        assert "precision:" in out

    def test_replay_against_live_server(self, campaign_dir, capsys):
        import threading

        from repro.streaming import StreamingApp, make_server

        server = make_server(StreamingApp(), port=0)
        port = server.server_address[1]
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            # An id with a space exercises the URL quoting path.
            code = main(
                [
                    "ingest",
                    str(campaign_dir),
                    "--batches", "3",
                    "--campaign", "cli replay",
                    "--url", f"http://127.0.0.1:{port}",
                ]
            )
            assert code == 0
            out = capsys.readouterr().out
            assert "cli replay" in out
            assert "after 3 batches" in out
        finally:
            server.shutdown()
            server.server_close()


class TestAblationExperiment:
    def test_registered_and_runs(self, capsys):
        from repro.experiments import run_experiment
        from repro.experiments.common import ScalePreset

        tiny = ScalePreset(
            name="tiny",
            n_tasks=20,
            n_workers=12,
            n_copiers=3,
            target_claims=140,
            instances=1,
        )
        result = run_experiment(
            "ablation",
            scale=tiny,
            variants={"default": {}, "literal": {"discounted_posterior": False}},
        )
        assert result.meta["variants"] == ["default", "literal"]
        assert len(result.y("precision")) == 2


class TestRunCache:
    _ARGS = [
        "run", "fig3b",
        "--instances", "1",
        "--no-chart",
    ]

    def test_cached_rerun_bit_identical_and_reports_hits(
        self, tmp_path, capsys
    ):
        store = str(tmp_path / "store")
        outs = []
        for name in ("cold", "warm"):
            out_dir = tmp_path / name
            code = main(
                [*self._ARGS, "--cache", "--store", store, "--out", str(out_dir)]
            )
            assert code == 0
            outs.append(capsys.readouterr().out)
        assert "0 hits" in outs[0]
        assert "0 misses" in outs[1]
        assert "hit rate 100.0%" in outs[1]
        cold = (tmp_path / "cold" / "fig3b.json").read_text()
        warm = (tmp_path / "warm" / "fig3b.json").read_text()
        assert cold == warm
        assert (tmp_path / "cold" / "fig3b.csv").read_text() == (
            tmp_path / "warm" / "fig3b.csv"
        ).read_text()

    def test_no_cache_prints_no_ledger_line(self, capsys):
        code = main([*self._ARGS])
        assert code == 0
        assert "ledger:" not in capsys.readouterr().out

    def test_timing_experiment_ignores_cache(self, tmp_path, capsys):
        code = main(
            ["run", "fig5a", "--instances", "1", "--no-chart",
             "--cache", "--store", str(tmp_path / "store")]
        )
        assert code == 0
        captured = capsys.readouterr()
        # The diagnostic is a structured JSON log line on stderr now.
        assert "never cached" in captured.err
        assert json.loads(captured.err.splitlines()[0])["logger"] == "repro.cli"
        assert "hit rate" not in captured.out


class TestLedgerCommand:
    def _seed_store(self, tmp_path) -> str:
        store = str(tmp_path / "store")
        assert main(
            ["run", "fig3b", "--instances", "1", "--no-chart",
             "--cache", "--store", store]
        ) == 0
        return store

    def test_list_shows_rows_and_results(self, tmp_path, capsys):
        store = self._seed_store(tmp_path)
        capsys.readouterr()
        assert main(["ledger", "list", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "fig3b" in out
        assert "rows" in out and "results" in out
        assert "instance 0" in out

    def test_list_kind_filter(self, tmp_path, capsys):
        store = self._seed_store(tmp_path)
        capsys.readouterr()
        assert main(["ledger", "list", "--store", store, "--kind", "rows"]) == 0
        out = capsys.readouterr().out
        assert "instance 0" in out
        assert "| results |" not in out

    def test_show_prints_entry_payload(self, tmp_path, capsys):
        store = self._seed_store(tmp_path)
        capsys.readouterr()
        assert main(["ledger", "list", "--store", store]) == 0
        listing = capsys.readouterr().out
        prefix = next(
            line.split("|")[0].strip()
            for line in listing.splitlines()
            if "| rows" in line.replace("|    rows", "| rows")
        )
        assert main(["ledger", "show", prefix, "--store", store]) == 0
        import json as json_module

        payload = json_module.loads(capsys.readouterr().out)
        assert payload["experiment_id"] == "fig3b"
        assert "body" in payload and "key" in payload

    def test_show_unknown_prefix_exits(self, tmp_path, capsys):
        store = self._seed_store(tmp_path)
        with pytest.raises(SystemExit):
            main(["ledger", "show", "f" * 64, "--store", store])

    def test_gc_requires_scope(self, tmp_path):
        store = self._seed_store(tmp_path)
        with pytest.raises(SystemExit):
            main(["ledger", "gc", "--store", store])

    def test_gc_all_empties_store(self, tmp_path, capsys):
        store = self._seed_store(tmp_path)
        capsys.readouterr()
        assert main(["ledger", "gc", "--store", store, "--all"]) == 0
        assert "removed" in capsys.readouterr().out
        assert main(["ledger", "list", "--store", store]) == 0
        assert "0 of 0 entries" in capsys.readouterr().out


class TestScenarioCache:
    def test_scenario_run_cached_rerun(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        args = [
            "scenario", "run", "lazy-spammers",
            "--instances", "1",
            "--cache", "--store", store,
        ]
        assert main(args) == 0
        cold = capsys.readouterr().out
        assert main(args) == 0
        warm = capsys.readouterr().out
        assert "0 hits" in cold
        assert "hit rate 100.0%" in warm

        def metric_rows(text: str) -> list[str]:
            lines = text.splitlines()
            return [
                line for line in lines
                if line.startswith(("date_", "mv_", "detection_", "n_"))
            ]

        assert metric_rows(cold) == metric_rows(warm)
