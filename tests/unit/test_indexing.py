"""Unit tests for DatasetIndex (repro.core.indexing)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Dataset, Task, WorkerProfile
from repro.core import DatasetIndex


class TestIndexStructure:
    def test_positions_follow_dataset_order(self, tiny_dataset):
        index = DatasetIndex(tiny_dataset)
        assert index.task_ids == ["t0", "t1", "t2", "t3"]
        assert index.worker_ids == ["w1", "w2", "w3", "w4", "w5"]
        assert index.task_pos["t2"] == 2
        assert index.worker_pos["w4"] == 3

    def test_claims_round_trip(self, tiny_dataset):
        index = DatasetIndex(tiny_dataset)
        for (worker_id, task_id), value in tiny_dataset.claims.items():
            i = index.worker_pos[worker_id]
            j = index.task_pos[task_id]
            assert index.claims_by_task[j][i] == value
            assert index.claims_by_worker[i][j] == value

    def test_value_groups_sorted_and_complete(self, tiny_dataset):
        index = DatasetIndex(tiny_dataset)
        groups = index.value_groups[1]  # task t1
        assert list(groups) == sorted(groups)
        assert groups["A"] == (0, 1, 4)
        assert groups["B"] == (2, 3)

    def test_num_false_from_closed_domain(self, tiny_dataset):
        index = DatasetIndex(tiny_dataset)
        assert list(index.num_false) == [2, 2, 2, 2]

    def test_num_false_open_domain_from_observation(self):
        tasks = (Task(task_id="t0"), Task(task_id="t1"))
        workers = tuple(WorkerProfile(worker_id=f"w{i}") for i in range(3))
        claims = {
            ("w0", "t0"): "x",
            ("w1", "t0"): "y",
            ("w2", "t0"): "z",
            ("w0", "t1"): "only",
        }
        index = DatasetIndex(Dataset(tasks=tasks, workers=workers, claims=claims))
        assert index.num_false[0] == 2  # three observed values
        assert index.num_false[1] == 1  # floor of 1

    def test_pairs_only_for_coanswering_workers(self, tiny_dataset):
        index = DatasetIndex(tiny_dataset)
        # w5 answered only t0, t1; it co-answers with everyone there.
        assert (0, 4) in index.pairs
        # All pairs among w1..w4 share all four tasks.
        assert (0, 1) in index.pairs
        assert all(a < b for a, b in index.pairs)

    def test_shared_tasks_contents(self, tiny_dataset):
        index = DatasetIndex(tiny_dataset)
        assert index.shared_tasks[(0, 1)] == (0, 1, 2, 3)
        assert index.shared_tasks[(0, 4)] == (0, 1)

    def test_no_pairs_without_overlap(self):
        tasks = (Task(task_id="t0"), Task(task_id="t1"))
        workers = (WorkerProfile(worker_id="a"), WorkerProfile(worker_id="b"))
        claims = {("a", "t0"): "x", ("b", "t1"): "y"}
        index = DatasetIndex(Dataset(tasks=tasks, workers=workers, claims=claims))
        assert index.pairs == []
        assert index.shared_tasks == {}


class TestInitialAccuracy:
    def test_epsilon_only_on_answered_cells(self, tiny_dataset):
        index = DatasetIndex(tiny_dataset)
        matrix = index.initial_accuracy_matrix(0.5)
        assert matrix.shape == (5, 4)
        assert matrix[0, 0] == 0.5
        assert matrix[4, 2] == 0.0  # w5 did not answer t2
        answered = sum(len(c) for c in index.claims_by_worker)
        assert np.count_nonzero(matrix) == answered


class TestMajorityVote:
    def test_majority_wins(self, tiny_dataset):
        index = DatasetIndex(tiny_dataset)
        votes = index.majority_vote()
        # t1: A has 3 votes (w1, w2, w5) vs B with 2.
        assert votes[1] == "A"
        # t2: A has 2 votes (w1, w2) vs B with 2 -> lexicographic tie.
        assert votes[2] == "A"

    def test_tie_breaks_lexicographically(self):
        tasks = (Task(task_id="t0"),)
        workers = (WorkerProfile(worker_id="a"), WorkerProfile(worker_id="b"))
        claims = {("a", "t0"): "zebra", ("b", "t0"): "apple"}
        index = DatasetIndex(Dataset(tasks=tasks, workers=workers, claims=claims))
        assert index.majority_vote() == ["apple"]

    def test_unanswered_task_yields_none(self):
        tasks = (Task(task_id="t0"), Task(task_id="t1"))
        workers = (WorkerProfile(worker_id="a"),)
        claims = {("a", "t0"): "x"}
        index = DatasetIndex(Dataset(tasks=tasks, workers=workers, claims=claims))
        assert index.majority_vote() == ["x", None]
