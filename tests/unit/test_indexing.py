"""Unit tests for DatasetIndex (repro.core.indexing)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Dataset, Task, WorkerProfile
from repro.core import DatasetIndex


class TestIndexStructure:
    def test_positions_follow_dataset_order(self, tiny_dataset):
        index = DatasetIndex(tiny_dataset)
        assert index.task_ids == ["t0", "t1", "t2", "t3"]
        assert index.worker_ids == ["w1", "w2", "w3", "w4", "w5"]
        assert index.task_pos["t2"] == 2
        assert index.worker_pos["w4"] == 3

    def test_claims_round_trip(self, tiny_dataset):
        index = DatasetIndex(tiny_dataset)
        for (worker_id, task_id), value in tiny_dataset.claims.items():
            i = index.worker_pos[worker_id]
            j = index.task_pos[task_id]
            assert index.claims_by_task[j][i] == value
            assert index.claims_by_worker[i][j] == value

    def test_value_groups_sorted_and_complete(self, tiny_dataset):
        index = DatasetIndex(tiny_dataset)
        groups = index.value_groups[1]  # task t1
        assert list(groups) == sorted(groups)
        assert groups["A"] == (0, 1, 4)
        assert groups["B"] == (2, 3)

    def test_num_false_from_closed_domain(self, tiny_dataset):
        index = DatasetIndex(tiny_dataset)
        assert list(index.num_false) == [2, 2, 2, 2]

    def test_num_false_open_domain_from_observation(self):
        tasks = (Task(task_id="t0"), Task(task_id="t1"))
        workers = tuple(WorkerProfile(worker_id=f"w{i}") for i in range(3))
        claims = {
            ("w0", "t0"): "x",
            ("w1", "t0"): "y",
            ("w2", "t0"): "z",
            ("w0", "t1"): "only",
        }
        index = DatasetIndex(Dataset(tasks=tasks, workers=workers, claims=claims))
        assert index.num_false[0] == 2  # three observed values
        assert index.num_false[1] == 1  # floor of 1

    def test_pairs_only_for_coanswering_workers(self, tiny_dataset):
        index = DatasetIndex(tiny_dataset)
        # w5 answered only t0, t1; it co-answers with everyone there.
        assert (0, 4) in index.pairs
        # All pairs among w1..w4 share all four tasks.
        assert (0, 1) in index.pairs
        assert all(a < b for a, b in index.pairs)

    def test_shared_tasks_contents(self, tiny_dataset):
        index = DatasetIndex(tiny_dataset)
        assert index.shared_tasks[(0, 1)] == (0, 1, 2, 3)
        assert index.shared_tasks[(0, 4)] == (0, 1)

    def test_no_pairs_without_overlap(self):
        tasks = (Task(task_id="t0"), Task(task_id="t1"))
        workers = (WorkerProfile(worker_id="a"), WorkerProfile(worker_id="b"))
        claims = {("a", "t0"): "x", ("b", "t1"): "y"}
        index = DatasetIndex(Dataset(tasks=tasks, workers=workers, claims=claims))
        assert index.pairs == []
        assert index.shared_tasks == {}


class TestInitialAccuracy:
    def test_epsilon_only_on_answered_cells(self, tiny_dataset):
        index = DatasetIndex(tiny_dataset)
        matrix = index.initial_accuracy_matrix(0.5)
        assert matrix.shape == (5, 4)
        assert matrix[0, 0] == 0.5
        assert matrix[4, 2] == 0.0  # w5 did not answer t2
        answered = sum(len(c) for c in index.claims_by_worker)
        assert np.count_nonzero(matrix) == answered


class TestMajorityVote:
    def test_majority_wins(self, tiny_dataset):
        index = DatasetIndex(tiny_dataset)
        votes = index.majority_vote()
        # t1: A has 3 votes (w1, w2, w5) vs B with 2.
        assert votes[1] == "A"
        # t2: A has 2 votes (w1, w2) vs B with 2 -> lexicographic tie.
        assert votes[2] == "A"

    def test_tie_breaks_lexicographically(self):
        tasks = (Task(task_id="t0"),)
        workers = (WorkerProfile(worker_id="a"), WorkerProfile(worker_id="b"))
        claims = {("a", "t0"): "zebra", ("b", "t0"): "apple"}
        index = DatasetIndex(Dataset(tasks=tasks, workers=workers, claims=claims))
        assert index.majority_vote() == ["apple"]

    def test_unanswered_task_yields_none(self):
        tasks = (Task(task_id="t0"), Task(task_id="t1"))
        workers = (WorkerProfile(worker_id="a"),)
        claims = {("a", "t0"): "x"}
        index = DatasetIndex(Dataset(tasks=tasks, workers=workers, claims=claims))
        assert index.majority_vote() == ["x", None]


from tests.conftest import assert_same_claim_arrays as assert_same_arrays


class TestIndexExtension:
    def split(self, dataset, n_first_tasks):
        first = [t.task_id for t in dataset.tasks[:n_first_tasks]]
        first_set = set(first)
        base_claims = {k: v for k, v in dataset.claims.items() if k[1] in first_set}
        rest_claims = {k: v for k, v in dataset.claims.items() if k[1] not in first_set}
        base = Dataset(
            tasks=dataset.tasks[:n_first_tasks],
            workers=dataset.workers,
            claims=base_claims,
        )
        return base, dataset.tasks[n_first_tasks:], rest_claims

    def test_appended_tasks_match_cold_rebuild(self, tiny_dataset):
        base, new_tasks, new_claims = self.split(tiny_dataset, 2)
        index = DatasetIndex(base)
        index.arrays
        ext = index.extended(tasks=new_tasks, claims=new_claims)
        cold = DatasetIndex(tiny_dataset)
        assert ext.index.task_ids == cold.task_ids
        assert ext.index.value_groups == cold.value_groups
        np.testing.assert_array_equal(ext.index.num_false, cold.num_false)
        assert_same_arrays(ext.index.arrays, cold.arrays)

    def test_pair_tables_extend_when_materialized(self, tiny_dataset):
        base, new_tasks, new_claims = self.split(tiny_dataset, 2)
        index = DatasetIndex(base)
        index.arrays._pair_tables
        ext = index.extended(tasks=new_tasks, claims=new_claims)
        assert "_pair_tables" in ext.index.arrays.__dict__
        cold = DatasetIndex(tiny_dataset)
        for got, want in zip(
            ext.index.arrays._pair_tables, cold.arrays._pair_tables
        ):
            np.testing.assert_array_equal(got, want)

    def test_claims_on_existing_tasks_mark_them_dirty(self, tiny_dataset):
        index = DatasetIndex(tiny_dataset)
        index.arrays
        ext = index.extended(claims={("w5", "t2"): "C", ("w5", "t3"): "A"})
        assert sorted(ext.dirty_tasks.tolist()) == [2, 3]
        assert len(ext.new_task_positions) == 0
        merged = dict(tiny_dataset.claims)
        merged.update({("w5", "t2"): "C", ("w5", "t3"): "A"})
        cold = DatasetIndex(
            Dataset(tasks=tiny_dataset.tasks, workers=tiny_dataset.workers,
                    claims=merged)
        )
        assert_same_arrays(ext.index.arrays, cold.arrays)

    def test_claim_map_carries_per_claim_state(self, tiny_dataset):
        index = DatasetIndex(tiny_dataset)
        arrays = index.arrays
        state = np.arange(arrays.n_claims, dtype=np.float64)
        ext = index.extended(claims={("w5", "t2"): "C"})
        carried = np.full(ext.index.arrays.n_claims, -1.0)
        carried[ext.claim_map] = state
        for old_pos in range(arrays.n_claims):
            new_pos = int(ext.claim_map[old_pos])
            assert arrays.claim_worker[old_pos] == ext.index.arrays.claim_worker[new_pos]
            assert arrays.claim_task[old_pos] == ext.index.arrays.claim_task[new_pos]
        # exactly one new claim got no carried state
        assert (carried < 0).sum() == 1

    def test_claim_map_none_without_materialized_arrays(self, tiny_dataset):
        index = DatasetIndex(tiny_dataset)
        ext = index.extended(claims={("w5", "t2"): "C"})
        assert ext.claim_map is None
        # the new index still encodes correctly, just lazily
        assert ext.index.arrays.n_claims == index.dataset.n_claims + 1

    def test_old_index_is_not_mutated(self, tiny_dataset):
        index = DatasetIndex(tiny_dataset)
        before_groups = {j: dict(g) for j, g in enumerate(index.value_groups)}
        before_claims = {j: dict(c) for j, c in enumerate(index.claims_by_task)}
        index.arrays
        index.extended(claims={("w5", "t2"): "C"})
        assert {j: dict(g) for j, g in enumerate(index.value_groups)} == before_groups
        assert {j: dict(c) for j, c in enumerate(index.claims_by_task)} == before_claims
        assert index.arrays.n_claims == tiny_dataset.n_claims

    def test_new_workers_and_sources(self, tiny_dataset):
        index = DatasetIndex(tiny_dataset)
        index.arrays
        newbies = (
            WorkerProfile(worker_id="w6"),
            WorkerProfile(
                worker_id="w7", is_copier=True, sources=("w6",), copy_prob=0.5
            ),
        )
        ext = index.extended(workers=newbies, claims={("w6", "t0"): "B"})
        assert ext.index.worker_ids[-2:] == ["w6", "w7"]
        assert ext.index.claims_by_worker[5] == {0: "B"}
        assert ext.index.claims_by_worker[6] == {}

    def test_validation_errors(self, tiny_dataset):
        from repro.errors import DataFormatError

        index = DatasetIndex(tiny_dataset)
        with pytest.raises(DataFormatError, match="unknown task"):
            index.extended(claims={("w1", "nope"): "A"})
        with pytest.raises(DataFormatError, match="unknown worker"):
            index.extended(claims={("nope", "t0"): "A"})
        with pytest.raises(DataFormatError, match="duplicate claim"):
            index.extended(claims={("w1", "t0"): "B"})
        with pytest.raises(DataFormatError, match="re-adds existing task"):
            index.extended(tasks=(Task(task_id="t0"),))
        with pytest.raises(DataFormatError, match="re-adds existing worker"):
            index.extended(workers=(WorkerProfile(worker_id="w1"),))
        with pytest.raises(DataFormatError, match="closed domain"):
            index.extended(claims={("w5", "t2"): "Z"})
        with pytest.raises(DataFormatError, match="unknown worker"):
            index.extended(
                workers=(
                    WorkerProfile(
                        worker_id="w9", is_copier=True, sources=("ghost",),
                        copy_prob=0.5,
                    ),
                )
            )
        with pytest.raises(DataFormatError, match="non-empty string"):
            index.extended(claims={("w5", "t2"): ""})
