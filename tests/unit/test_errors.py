"""Unit tests for the exception hierarchy (repro.errors)."""

from __future__ import annotations

import pytest

from repro.errors import (
    ConfigurationError,
    ConvergenceWarning,
    DataFormatError,
    InfeasibleCoverageError,
    ReproError,
    UnknownExperimentError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc_type",
        [
            ConfigurationError,
            DataFormatError,
            InfeasibleCoverageError,
            UnknownExperimentError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc_type):
        assert issubclass(exc_type, ReproError)

    def test_configuration_error_is_value_error(self):
        # Callers using stdlib idioms still catch it.
        assert issubclass(ConfigurationError, ValueError)

    def test_data_format_error_is_value_error(self):
        assert issubclass(DataFormatError, ValueError)

    def test_infeasible_is_runtime_error(self):
        assert issubclass(InfeasibleCoverageError, RuntimeError)

    def test_unknown_experiment_is_key_error(self):
        assert issubclass(UnknownExperimentError, KeyError)

    def test_convergence_warning_is_warning(self):
        assert issubclass(ConvergenceWarning, UserWarning)


class TestInfeasibleCoverageError:
    def test_carries_task_ids(self):
        error = InfeasibleCoverageError(("t3", "t7"))
        assert error.task_ids == ("t3", "t7")
        assert "t3" in str(error)

    def test_long_task_list_truncated_in_message(self):
        error = InfeasibleCoverageError(tuple(f"t{i}" for i in range(20)))
        assert "..." in str(error)
        assert len(error.task_ids) == 20

    def test_custom_message(self):
        error = InfeasibleCoverageError(("t1",), message="boom")
        assert str(error) == "boom"

    def test_catchable_as_repro_error(self):
        with pytest.raises(ReproError):
            raise InfeasibleCoverageError(("t1",))
