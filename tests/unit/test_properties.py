"""Unit tests for the mechanism-property verifiers (repro.auction.properties)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import ReverseAuction
from repro.auction.properties import (
    approximation_bound,
    bid_utility_curve,
    verify_individual_rationality,
    verify_monotonicity,
    verify_truthfulness,
)


class TestIndividualRationality:
    def test_holds_on_seeded_instances(self, soac_medium):
        outcome = ReverseAuction().run(soac_medium)
        assert verify_individual_rationality(soac_medium, outcome)

    def test_holds_on_small_instance(self, soac_small):
        outcome = ReverseAuction().run(soac_small)
        assert verify_individual_rationality(soac_small, outcome)


class TestBidUtilityCurve:
    def test_curve_shape_for_winner(self, soac_medium):
        outcome = ReverseAuction().run(soac_medium)
        winner = outcome.winner_ids[0]
        cost = float(
            soac_medium.costs[soac_medium.worker_ids.index(winner)]
        )
        curve = bid_utility_curve(
            soac_medium, winner, np.linspace(0.2 * cost, 3 * cost, 9)
        )
        # While winning, utility equals payment - cost and is constant
        # wherever the selection outcome is unchanged; once losing it is 0.
        for point in curve:
            if not point.won:
                assert point.utility == 0.0
            assert math.isfinite(point.utility)

    def test_winning_region_is_prefix(self, soac_medium):
        """Monotone selection: the set of winning bids is downward closed."""
        outcome = ReverseAuction().run(soac_medium)
        winner = outcome.winner_ids[0]
        cost = float(soac_medium.costs[soac_medium.worker_ids.index(winner)])
        curve = bid_utility_curve(
            soac_medium, winner, np.linspace(0.1 * cost, 4 * cost, 12)
        )
        won_flags = [point.won for point in curve]
        # After the first loss, no later (higher) bid may win.
        if False in won_flags:
            first_loss = won_flags.index(False)
            assert not any(won_flags[first_loss:])


class TestTruthfulness:
    def test_winner_cannot_gain(self, soac_medium):
        outcome = ReverseAuction().run(soac_medium)
        winner = outcome.winner_ids[0]
        cost = float(soac_medium.costs[soac_medium.worker_ids.index(winner)])
        grid = np.linspace(0.25 * cost, 2.5 * cost, 11)
        assert verify_truthfulness(soac_medium, winner, grid)

    def test_loser_cannot_gain(self, soac_medium):
        outcome = ReverseAuction().run(soac_medium)
        losers = [
            w for w in soac_medium.worker_ids if w not in outcome.payments
        ]
        if not losers:
            pytest.skip("auction selected everyone on this instance")
        loser = losers[0]
        cost = float(soac_medium.costs[soac_medium.worker_ids.index(loser)])
        grid = np.linspace(0.1 * cost, 2.0 * cost, 11)
        assert verify_truthfulness(soac_medium, loser, grid)

    def test_every_worker_on_small_instance(self, soac_small):
        for worker_id in soac_small.worker_ids:
            cost = float(
                soac_small.costs[soac_small.worker_ids.index(worker_id)]
            )
            grid = np.linspace(0.25 * cost, 3.0 * cost, 9)
            assert verify_truthfulness(soac_small, worker_id, grid)


class TestMonotonicity:
    def test_winners_monotone(self, soac_medium):
        outcome = ReverseAuction().run(soac_medium)
        for winner in outcome.winner_ids[:3]:
            assert verify_monotonicity(soac_medium, winner)

    def test_vacuous_for_losers(self, soac_medium):
        outcome = ReverseAuction().run(soac_medium)
        losers = [
            w for w in soac_medium.worker_ids if w not in outcome.payments
        ]
        if not losers:
            pytest.skip("auction selected everyone on this instance")
        assert verify_monotonicity(soac_medium, losers[0])


class TestApproximationBound:
    def test_positive_and_finite(self, soac_medium):
        bound = approximation_bound(soac_medium)
        assert bound > 2 * math.e  # H >= 1
        assert math.isfinite(bound)

    def test_infinite_without_accuracy(self, soac_small):
        import numpy as np

        from repro import SOACInstance

        empty = SOACInstance(
            worker_ids=("w0",),
            task_ids=("t0",),
            requirements=np.array([0.0]),
            accuracy=np.array([[0.0]]),
            bids=np.array([1.0]),
            costs=np.array([1.0]),
            task_values=np.array([1.0]),
        )
        assert approximation_bound(empty) == math.inf

    def test_grows_with_requirements(self, soac_small):
        import dataclasses

        bigger = dataclasses.replace(
            soac_small, requirements=soac_small.requirements * 3
        )
        assert approximation_bound(bigger) >= approximation_bound(soac_small)
