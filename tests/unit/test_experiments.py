"""Unit tests for the experiment registry, runners, and CLI."""

from __future__ import annotations

import pytest

from repro.errors import UnknownExperimentError
from repro.experiments import (
    PAPER_SCALE,
    QUICK_SCALE,
    ScalePreset,
    get_experiment,
    list_experiments,
    run_experiment,
)
from repro.experiments.common import (
    auction_algorithms,
    base_config,
    resolve_scale,
    truth_algorithms,
)
from repro.experiments.table1 import TABLE1_TRUTHS, build_affiliation_example

#: A deliberately tiny preset so runner tests stay fast.
TINY = ScalePreset(
    name="tiny",
    n_tasks=24,
    n_workers=14,
    n_copiers=4,
    target_claims=170,
    instances=2,
)


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        ids = {e.experiment_id for e in list_experiments()}
        expected = {
            "table1",
            "fig3a", "fig3b",
            "fig4a", "fig4b",
            "fig5a", "fig5b",
            "fig6a", "fig6b",
            "fig7a", "fig7b",
            "fig8a", "fig8b",
            "approx",
        }
        assert expected <= ids

    def test_unknown_id_raises(self):
        with pytest.raises(UnknownExperimentError):
            get_experiment("fig99")

    def test_metadata_present(self):
        for experiment in list_experiments():
            assert experiment.paper_reference
            assert experiment.summary


class TestCommon:
    def test_scale_resolution(self):
        assert resolve_scale("paper") is PAPER_SCALE
        assert resolve_scale("quick") is QUICK_SCALE
        assert resolve_scale(TINY) is TINY
        with pytest.raises(Exception):
            resolve_scale("huge")

    def test_base_config_overrides(self):
        config = base_config(TINY, instances=1, base_seed=7)
        assert config.n_tasks == 24
        assert config.instances == 1
        assert config.base_seed == 7

    def test_truth_algorithm_factory(self):
        algos = truth_algorithms(None)
        assert set(algos) == {"MV", "NC", "DATE", "ED"}
        assert set(truth_algorithms(None, include_ed=False)) == {"MV", "NC", "DATE"}

    def test_auction_algorithm_factory(self):
        assert set(auction_algorithms()) == {"RA", "GA", "GB"}


class TestTable1:
    def test_example_dataset_structure(self):
        dataset = build_affiliation_example()
        assert dataset.n_tasks == 5
        assert dataset.n_workers == 5
        assert dataset.n_claims == 25
        copiers = [w for w in dataset.workers if w.is_copier]
        assert {w.worker_id for w in copiers} == {"w4", "w5"}

    def test_mv_fails_date_recovers(self):
        result = run_experiment("table1")
        mv_correct = sum(result.series["MV"])
        date_correct = sum(result.series["DATE"])
        assert mv_correct == 2  # Stonebraker and Bernstein only
        assert date_correct == 5  # full recovery
        assert sum(result.series["ED"]) == 5

    def test_estimates_recorded(self):
        result = run_experiment("table1")
        estimates = result.meta["estimates"]
        assert estimates["MV"]["Dewitt"] == "UWisc"
        assert estimates["DATE"] == TABLE1_TRUTHS


class TestRunnersSmoke:
    """Each runner must produce a well-formed result at tiny scale."""

    def test_fig3a(self):
        result = run_experiment(
            "fig3a",
            scale=TINY,
            instances=1,
            epsilon_grid=(0.3, 0.5),
            alpha_grid=(0.2,),
        )
        assert result.x_values == (0.3, 0.5)
        assert result.series_names == ["alpha=0.2"]
        for y in result.y("alpha=0.2"):
            assert 0.0 <= y <= 1.0

    def test_fig3b(self):
        result = run_experiment(
            "fig3b", scale=TINY, instances=1, r_grid=(0.2, 0.6)
        )
        assert len(result.y("DATE")) == 2

    def test_fig4a(self):
        result = run_experiment(
            "fig4a", scale=TINY, instances=1, task_grid=(12, 24)
        )
        assert set(result.series) == {"MV", "NC", "DATE", "ED"}
        for series in result.series.values():
            for y in series:
                assert 0.0 <= y <= 1.0

    def test_fig4b_without_ed(self):
        result = run_experiment(
            "fig4b", scale=TINY, instances=1, worker_grid=(8, 14), include_ed=False
        )
        assert set(result.series) == {"MV", "NC", "DATE"}

    def test_fig5a(self):
        result = run_experiment(
            "fig5a", scale=TINY, instances=1, task_grid=(12, 24)
        )
        for series in result.series.values():
            for y in series:
                assert y >= 0.0

    def test_fig6a(self):
        result = run_experiment(
            "fig6a", scale=TINY, instances=1, task_grid=(12, 24)
        )
        assert set(result.series) == {"RA", "GA", "GB"}
        for series in result.series.values():
            for y in series:
                assert y > 0.0

    def test_fig6_cost_rises_with_tasks(self):
        result = run_experiment(
            "fig6a", scale=TINY, instances=2, task_grid=(8, 24)
        )
        assert result.y("RA")[0] <= result.y("RA")[-1]

    def test_fig7b(self):
        result = run_experiment(
            "fig7b", scale=TINY, instances=1, worker_grid=(8, 14)
        )
        assert set(result.series) == {"RA", "GA", "GB"}

    def test_fig8a_truthfulness(self):
        result = run_experiment("fig8a", scale=TINY)
        truthful = result.meta["truthful_utility"]
        assert truthful >= 0.0
        for utility in result.y("utility"):
            assert utility <= truthful + 1e-9

    def test_fig8b_truthfulness(self):
        result = run_experiment("fig8b", scale=TINY)
        assert result.meta["truthful_utility"] == 0.0
        for utility in result.y("utility"):
            assert utility <= 1e-9

    def test_approx_ratio_at_least_one(self):
        result = run_experiment(
            "approx", instances=2, n_tasks=10, n_workers=12, n_copiers=2
        )
        for ratio in result.y("ratio"):
            assert ratio >= 1.0 - 1e-9
        assert result.meta["mean_ratio"] >= 1.0 - 1e-9

    def test_winners_quality(self):
        result = run_experiment(
            "winners", scale=TINY, requirement_scales=(0.5, 1.0)
        )
        assert set(result.series) == {
            "all workers",
            "winners only",
            "winner fraction",
        }
        # Hiring more (higher requirements) must not shrink the winner set.
        fractions = result.y("winner fraction")
        assert fractions[-1] >= fractions[0]
        for y in result.y("winners only"):
            assert 0.0 <= y <= 1.0


class TestCLI:
    def test_list_command(self, capsys):
        from repro.__main__ import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig4a" in out
        assert "table1" in out

    def test_run_table1(self, capsys, tmp_path):
        from repro.__main__ import main

        code = main(["run", "table1", "--out", str(tmp_path), "--no-chart"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert (tmp_path / "table1.csv").exists()
        assert (tmp_path / "table1.json").exists()

    def test_run_unknown_experiment(self):
        from repro.__main__ import main

        with pytest.raises(UnknownExperimentError):
            main(["run", "fig99"])
