"""Unit tests for claim batches and replay (repro.streaming.ingest)."""

from __future__ import annotations

import pytest

from repro import Task, WorkerProfile
from repro.errors import DataFormatError
from repro.streaming import ClaimBatch, batch_from_json, batch_to_json, replay_batches


class TestClaimBatch:
    def test_defaults_are_empty(self):
        batch = ClaimBatch()
        assert batch.is_empty
        assert batch.n_claims == 0

    def test_counts(self):
        batch = ClaimBatch(
            claims={("w", "t"): "v"},
            tasks=(Task(task_id="t"),),
            workers=(WorkerProfile(worker_id="w"),),
        )
        assert not batch.is_empty
        assert batch.n_claims == 1

    def test_duplicate_task_ids_rejected(self):
        with pytest.raises(DataFormatError, match="duplicate task ids"):
            ClaimBatch(tasks=(Task(task_id="t"), Task(task_id="t")))

    def test_duplicate_worker_ids_rejected(self):
        with pytest.raises(DataFormatError, match="duplicate worker ids"):
            ClaimBatch(
                workers=(
                    WorkerProfile(worker_id="w"),
                    WorkerProfile(worker_id="w"),
                )
            )

    def test_malformed_claim_keys_rejected(self):
        with pytest.raises(DataFormatError, match="pair"):
            ClaimBatch(claims={"not-a-pair": "v"})
        with pytest.raises(DataFormatError, match="pair"):
            ClaimBatch(claims={("w", ""): "v"})

    def test_empty_value_rejected(self):
        with pytest.raises(DataFormatError, match="non-empty string"):
            ClaimBatch(claims={("w", "t"): ""})


class TestReplayBatches:
    def test_batch_count_clamped_to_tasks(self, tiny_dataset):
        batches = replay_batches(tiny_dataset, 100)
        assert len(batches) == tiny_dataset.n_tasks

    def test_invalid_batch_count(self, tiny_dataset):
        with pytest.raises(ValueError):
            replay_batches(tiny_dataset, 0)

    def test_covers_all_claims_once(self, qlf_small):
        batches = replay_batches(qlf_small, 7)
        merged = {}
        for batch in batches:
            assert not set(batch.claims) & set(merged)
            merged.update(batch.claims)
        assert merged == dict(qlf_small.claims)

    def test_tasks_published_in_dataset_order(self, qlf_small):
        batches = replay_batches(qlf_small, 7)
        published = [t.task_id for batch in batches for t in batch.tasks]
        assert published == [t.task_id for t in qlf_small.tasks]

    def test_workers_register_exactly_once(self, qlf_small):
        batches = replay_batches(qlf_small, 7)
        registered = [w.worker_id for batch in batches for w in batch.workers]
        assert len(registered) == len(set(registered))
        assert set(registered) == {w.worker_id for w in qlf_small.workers}

    def test_copier_never_precedes_its_sources(self, qlf_small):
        batches = replay_batches(qlf_small, 7)
        seen: set[str] = set()
        for batch in batches:
            batch_ids = {w.worker_id for w in batch.workers}
            for worker in batch.workers:
                for source in worker.sources:
                    assert source in seen or source in batch_ids
            seen |= batch_ids

    def test_claims_ride_with_their_task_batch(self, tiny_dataset):
        batches = replay_batches(tiny_dataset, 2)
        for batch in batches:
            task_ids = {t.task_id for t in batch.tasks}
            assert {task_id for (_, task_id) in batch.claims} <= task_ids


class TestJsonRoundTrip:
    def test_round_trip(self, tiny_dataset):
        batch = ClaimBatch(
            claims=tiny_dataset.claims,
            tasks=tiny_dataset.tasks,
            workers=tiny_dataset.workers,
        )
        payload = batch_to_json(batch, include_truth=True)
        decoded = batch_from_json(payload)
        assert decoded.claims == batch.claims
        assert decoded.tasks == batch.tasks
        assert decoded.workers == batch.workers

    def test_truth_hidden_by_default(self, tiny_dataset):
        batch = ClaimBatch(tasks=tiny_dataset.tasks)
        payload = batch_to_json(batch)
        assert all("truth" not in spec for spec in payload["tasks"])
        decoded = batch_from_json(payload)
        assert all(t.truth is None for t in decoded.tasks)

    def test_malformed_payloads_rejected(self):
        with pytest.raises(DataFormatError):
            batch_from_json(["not", "an", "object"])
        with pytest.raises(DataFormatError, match="worker/task/value"):
            batch_from_json({"claims": [{"worker": "w"}]})
        with pytest.raises(DataFormatError, match="task_id"):
            batch_from_json({"tasks": [{"domain": ["A"]}]})
        with pytest.raises(DataFormatError, match="worker_id"):
            batch_from_json({"workers": [{}]})

    def test_duplicate_claim_rows_rejected(self):
        rows = [
            {"worker": "w", "task": "t", "value": "a"},
            {"worker": "w", "task": "t", "value": "b"},
        ]
        with pytest.raises(DataFormatError, match="duplicate claim"):
            batch_from_json({"claims": rows})
