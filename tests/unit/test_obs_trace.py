"""Run tracing: JSONL round-trip, spans, and the ledger fingerprint join."""

from __future__ import annotations

import json

import pytest

from repro.artifacts import RunKey, RunLedger
from repro.artifacts.ledger import result_fingerprint, row_fingerprint
from repro.errors import ConfigurationError
from repro.obs import trace as obs_trace
from repro.obs.trace import (
    TraceWriter,
    active,
    emit,
    find_trace,
    list_traces,
    read_trace,
    run_fingerprint,
    span,
    trace_run,
)
from repro.simulation.runner import run_instances


def _metric_fn(k: int) -> dict[str, float]:
    return {"value": float(k) + 0.5}


class TestWriterRoundTrip:
    def test_events_round_trip_in_seq_order(self, tmp_path):
        path = tmp_path / "t.jsonl"
        writer = TraceWriter(path, run="abc")
        writer.emit("first", x=1)
        writer.emit("second", y=[1, 2], z={"a": True})
        events = read_trace(path)
        assert [e["event"] for e in events] == ["first", "second"]
        assert [e["seq"] for e in events] == [0, 1]
        assert events[0]["x"] == 1
        assert events[1]["y"] == [1, 2]
        assert events[1]["z"] == {"a": True}
        assert all(e["elapsed_s"] >= 0.0 for e in events)

    def test_opening_a_writer_truncates_the_previous_run(self, tmp_path):
        path = tmp_path / "t.jsonl"
        TraceWriter(path).emit("old")
        TraceWriter(path).emit("new")
        assert [e["event"] for e in read_trace(path)] == ["new"]

    def test_unfingerprintable_fields_fall_back_to_repr(self, tmp_path):
        path = tmp_path / "t.jsonl"
        TraceWriter(path).emit("weird", value=object())
        (event,) = read_trace(path)
        assert event["value"].startswith("<object object")

    def test_corrupt_line_raises_configuration_error(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"event": "ok", "seq": 0}\nnot json\n')
        with pytest.raises(ConfigurationError, match="corrupt trace line"):
            read_trace(path)


class TestActiveTrace:
    def test_emit_and_span_are_noops_without_a_trace(self):
        assert active() is None
        emit("nothing", x=1)  # must not raise or write anywhere
        with span("quiet") as writer:
            assert writer is None

    def test_trace_run_brackets_events_and_resets(self, tmp_path):
        with trace_run({"k": 1}, directory=tmp_path, meta={"who": "test"}) as w:
            assert active() is w
            emit("inside", n=7)
        assert active() is None
        events = read_trace(w.path)
        assert [e["event"] for e in events] == ["run_start", "inside", "run_end"]
        assert events[0]["meta"] == {"who": "test"}
        assert events[0]["run"] == w.run
        assert events[-1]["ok"] is True

    def test_run_end_records_failure_and_reraises(self, tmp_path):
        with pytest.raises(RuntimeError, match="boom"):
            with trace_run({"k": 2}, directory=tmp_path) as w:
                raise RuntimeError("boom")
        events = read_trace(w.path)
        assert events[-1]["event"] == "run_end"
        assert events[-1]["ok"] is False

    def test_span_emits_start_end_with_duration(self, tmp_path):
        with trace_run({"k": 3}, directory=tmp_path) as w:
            with span("work", items=4):
                pass
        start, end = read_trace(w.path)[1:3]
        assert start == {
            "event": "span_start", "span": "work", "items": 4,
            "seq": start["seq"], "elapsed_s": start["elapsed_s"],
        }
        assert end["event"] == "span_end"
        assert end["ok"] is True
        assert end["duration_s"] >= 0.0


class TestFingerprintJoin:
    def test_runkey_trace_is_named_by_the_result_fingerprint(self, tmp_path):
        key = RunKey(experiment_id="e1", payload={"seed": 1})
        assert run_fingerprint(key) == result_fingerprint(key)
        with trace_run(key, directory=tmp_path) as w:
            pass
        assert w.path.name == f"{result_fingerprint(key)}.jsonl"

    def test_adhoc_keys_get_stable_distinct_names(self):
        a = run_fingerprint({"command": "run", "experiment": "fig3b"})
        b = run_fingerprint({"command": "run", "experiment": "fig4a"})
        assert a == run_fingerprint({"command": "run", "experiment": "fig3b"})
        assert a != b

    def test_instance_rows_carry_ledger_row_fingerprints(self, tmp_path):
        ledger = RunLedger(tmp_path / "store")
        key = RunKey(experiment_id="e1", payload={"seed": 9})
        with trace_run(key, directory=tmp_path / "traces") as w:
            run_instances(3, _metric_fn, ledger=ledger, key=key)
        fresh = [
            e for e in read_trace(w.path) if e["event"] == "instance_row"
        ]
        assert [e["instance"] for e in fresh] == [0, 1, 2]
        assert all(e["cached"] is False for e in fresh)
        assert [e["fingerprint"] for e in fresh] == [
            row_fingerprint(key, k) for k in range(3)
        ]
        # A warm rerun replays the same fingerprints as cached rows.
        with trace_run(key, directory=tmp_path / "traces") as w2:
            run_instances(3, _metric_fn, ledger=ledger, key=key)
        cached = [
            e for e in read_trace(w2.path) if e["event"] == "instance_row"
        ]
        assert all(e["cached"] is True for e in cached)
        assert [e["fingerprint"] for e in cached] == [
            e["fingerprint"] for e in fresh
        ]

    def test_untraced_ledger_run_emits_nothing(self, tmp_path):
        ledger = RunLedger(tmp_path / "store")
        key = RunKey(experiment_id="e1", payload={"seed": 9})
        table = run_instances(2, _metric_fn, ledger=ledger, key=key)
        assert table.n_instances == 2
        assert obs_trace.active() is None


class TestTraceStore:
    def test_list_traces_newest_first_with_event_counts(self, tmp_path):
        with trace_run({"n": 1}, directory=tmp_path) as first:
            emit("x")
        with trace_run({"n": 2}, directory=tmp_path):
            pass
        entries = list_traces(tmp_path)
        assert len(entries) == 2
        assert {e.fingerprint for e in entries} == {
            p.stem for p in tmp_path.glob("*.jsonl")
        }
        by_name = {e.fingerprint: e for e in entries}
        assert by_name[first.run].events == 3  # run_start, x, run_end

    def test_list_traces_empty_directory(self, tmp_path):
        assert list_traces(tmp_path / "missing") == []

    def test_find_trace_by_unambiguous_prefix(self, tmp_path):
        with trace_run({"n": 1}, directory=tmp_path) as w:
            pass
        assert find_trace(w.run[:10], tmp_path) == w.path
        with pytest.raises(ConfigurationError, match="no trace matches"):
            find_trace("zzzz", tmp_path)
        with pytest.raises(ConfigurationError, match="empty"):
            find_trace("  ", tmp_path)

    def test_find_trace_ambiguous_prefix(self, tmp_path):
        (tmp_path / "abc111.jsonl").write_text("")
        (tmp_path / "abc222.jsonl").write_text("")
        with pytest.raises(ConfigurationError, match="ambiguous"):
            find_trace("abc", tmp_path)

    def test_json_lines_are_plain_json(self, tmp_path):
        with trace_run({"n": 5}, directory=tmp_path) as w:
            emit("e", value=1.5)
        for line in w.path.read_text().splitlines():
            assert isinstance(json.loads(line), dict)
