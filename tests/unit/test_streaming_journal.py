"""Write-ahead journal framing, grammar, and writer semantics (DESIGN.md §15).

These tests pin the durability layer's file-format contract in
isolation: self-verifying record framing, the torn-tail-vs-corruption
distinction, the record grammar (one create first, batch seqs strictly
increasing), the JSON config codec with its fingerprint verification,
and the writer's rollback-on-IO-error degradation.
"""

from __future__ import annotations

import json

import pytest

from repro.core.config import DateConfig
from repro.errors import ReproError
from repro.streaming.journal import (
    CampaignJournal,
    JournalCorruptError,
    JournalError,
    JournalWriteError,
    batch_from_record,
    batch_record,
    config_fingerprint,
    config_from_payload,
    config_to_payload,
    create_record,
    journal_path,
    list_journals,
    read_journal,
    refresh_record,
)
from repro.streaming.ingest import ClaimBatch
from repro.types import Task, WorkerProfile


def _tasks(n=2):
    return tuple(Task(task_id=f"t{i}", domain=("a", "b")) for i in range(n))


def _workers(n=2):
    return tuple(WorkerProfile(worker_id=f"w{i}") for i in range(n))


def _batch(i=0):
    tasks = (Task(task_id=f"bt{i}", domain=("a", "b")),)
    workers = (WorkerProfile(worker_id=f"bw{i}"),)
    return ClaimBatch(
        claims={(f"bw{i}", f"bt{i}"): "a"}, tasks=tasks, workers=workers
    )


def _write(tmp_path, records):
    journal = CampaignJournal(tmp_path / "c.wal.jsonl")
    for record in records:
        journal.append(record)
    journal.close()
    return journal.path


def _create(**overrides):
    defaults = dict(
        config=DateConfig(),
        algorithm="DATE",
        refresh_every=0,
        created_at=123.0,
    )
    defaults.update(overrides)
    return create_record("c", **defaults)


class TestFraming:
    def test_round_trip(self, tmp_path):
        records = [_create(), batch_record(1, _batch(0)), refresh_record(1, "fp")]
        path = _write(tmp_path, records)
        scan = read_journal(path)
        assert not scan.torn
        assert list(scan.records) == records
        assert scan.valid_bytes == path.stat().st_size

    def test_each_line_is_a_self_verifying_envelope(self, tmp_path):
        path = _write(tmp_path, [_create()])
        line = path.read_bytes().splitlines()[0]
        envelope = json.loads(line)
        body = json.dumps(envelope["record"], separators=(",", ":"))
        assert envelope["len"] == len(body)
        assert len(envelope["sha"]) == 16

    def test_unterminated_tail_is_torn_not_corrupt(self, tmp_path):
        path = _write(tmp_path, [_create(), batch_record(1, _batch())])
        data = path.read_bytes()
        path.write_bytes(data[:-4])  # cut mid-record, newline gone
        scan = read_journal(path)
        assert scan.torn
        assert len(scan.records) == 1
        assert scan.records[0]["kind"] == "create"

    def test_flipped_byte_in_final_line_is_torn(self, tmp_path):
        path = _write(tmp_path, [_create(), batch_record(1, _batch())])
        data = bytearray(path.read_bytes())
        data[-10] ^= 0xFF  # damage inside the last record's payload
        path.write_bytes(bytes(data))
        scan = read_journal(path)
        assert scan.torn
        assert len(scan.records) == 1

    def test_damage_before_the_end_is_corruption(self, tmp_path):
        path = _write(
            tmp_path, [_create(), batch_record(1, _batch(0)), batch_record(2, _batch(1))]
        )
        lines = path.read_bytes().splitlines(keepends=True)
        lines[1] = b'{"len":1,"sha":"00","record":{}}\n'
        path.write_bytes(b"".join(lines))
        with pytest.raises(JournalCorruptError):
            read_journal(path)

    def test_truncating_to_valid_bytes_heals_a_torn_file(self, tmp_path):
        path = _write(tmp_path, [_create(), batch_record(1, _batch())])
        data = path.read_bytes()
        path.write_bytes(data[:-4])
        scan = read_journal(path)
        journal = CampaignJournal(path)
        journal.truncate_to(scan.valid_bytes)
        journal.append(batch_record(1, _batch()))
        journal.close()
        healed = read_journal(path)
        assert not healed.torn
        assert len(healed.records) == 2


class TestGrammar:
    def test_first_record_must_be_create(self, tmp_path):
        path = _write(tmp_path, [batch_record(1, _batch())])
        with pytest.raises(JournalCorruptError, match="expected 'create'"):
            read_journal(path)

    def test_duplicate_create_is_corrupt(self, tmp_path):
        path = _write(tmp_path, [_create(), _create()])
        with pytest.raises(JournalCorruptError, match="duplicate create"):
            read_journal(path)

    def test_batch_seqs_must_strictly_increase(self, tmp_path):
        path = _write(
            tmp_path,
            [_create(), batch_record(2, _batch(0)), batch_record(2, _batch(1))],
        )
        with pytest.raises(JournalCorruptError, match="does not increase"):
            read_journal(path)

    def test_seq_gaps_are_allowed(self, tmp_path):
        # Gaps arise legitimately: a client may crash between assigning
        # a seq and sending it; the next batch just moves on.
        path = _write(
            tmp_path, [_create(), batch_record(1, _batch(0)), batch_record(5, _batch(1))]
        )
        assert len(read_journal(path).records) == 3

    def test_unknown_kind_is_corrupt(self, tmp_path):
        path = _write(tmp_path, [_create(), {"kind": "mystery"}])
        with pytest.raises(JournalCorruptError, match="unknown record kind"):
            read_journal(path)


class TestConfigCodec:
    def test_round_trip_preserves_fingerprint(self):
        config = DateConfig(
            copy_prob_r=0.7,
            accuracy_clamp=(0.05, 0.95),
            max_iterations=33,
            backend="reference",
        )
        rebuilt = config_from_payload(config_to_payload(config))
        assert config_to_payload(rebuilt) == config_to_payload(config)
        assert config_fingerprint(rebuilt) == config_fingerprint(config)

    def test_unknown_field_is_corrupt(self):
        payload = config_to_payload(DateConfig())
        payload["not_a_field"] = 1
        with pytest.raises(JournalCorruptError, match="unknown config field"):
            config_from_payload(payload)

    def test_non_default_objects_shift_the_fingerprint(self):
        # false_values/similarity are not in the JSON payload; the
        # fingerprint is what catches a config that cannot round-trip.
        from repro.core.falsedist import ZipfFalseValues

        config = DateConfig(false_values=ZipfFalseValues(exponent=1.7))
        rebuilt = config_from_payload(config_to_payload(config))
        assert config_fingerprint(rebuilt) != config_fingerprint(config)


class TestRecords:
    def test_batch_record_keeps_arrival_order(self):
        claims = {("w2", "t"): "a", ("w1", "t"): "b", ("w3", "t"): "a"}
        batch = ClaimBatch(
            claims=claims,
            tasks=(Task(task_id="t", domain=("a", "b")),),
            workers=_workers(4)[:3]
            + (WorkerProfile(worker_id="w3"),),
        )
        record = batch_record(4, batch)
        replayed = batch_from_record(record)
        assert list(replayed.claims) == list(claims)
        assert record["seq"] == 4

    def test_create_record_carries_seed_and_truth(self):
        tasks = (Task(task_id="t0", domain=("a", "b"), truth="a"),)
        record = _create(seed_tasks=tasks, seed_workers=_workers(1))
        assert record["seed"]["tasks"][0]["truth"] == "a"
        assert record["config_fp"] == config_fingerprint(DateConfig())

    def test_create_record_without_seed_has_no_seed_key(self):
        assert "seed" not in _create()


class TestFileNaming:
    def test_journal_path_quotes_awkward_ids(self, tmp_path):
        path = journal_path(tmp_path, "a/b c%d")
        assert "/" not in path.name.replace(".wal.jsonl", "")
        path.write_bytes(b"")
        [(campaign_id, found)] = list_journals(tmp_path)
        assert campaign_id == "a/b c%d"
        assert found == path

    def test_list_journals_on_missing_dir_is_empty(self, tmp_path):
        assert list_journals(tmp_path / "nope") == []


class TestWriter:
    def test_append_is_immediately_durable(self, tmp_path):
        journal = CampaignJournal(tmp_path / "c.wal.jsonl")
        journal.append(_create())
        # Read back *without* closing: the bytes must already be on disk.
        scan = read_journal(journal.path)
        assert len(scan.records) == 1
        journal.close()

    def test_failed_journal_refuses_appends(self, tmp_path):
        journal = CampaignJournal(tmp_path / "c.wal.jsonl")
        journal._failed = True
        with pytest.raises(JournalWriteError, match="refusing to append"):
            journal.append(_create())

    def test_delete_removes_the_file(self, tmp_path):
        journal = CampaignJournal(tmp_path / "c.wal.jsonl")
        journal.append(_create())
        journal.delete()
        assert not journal.path.exists()
        journal.delete()  # idempotent

    def test_journal_errors_are_repro_errors(self):
        assert issubclass(JournalError, ReproError)
        assert issubclass(JournalCorruptError, JournalError)
        assert issubclass(JournalWriteError, JournalError)
