"""Unit tests for the vectorized auction engine's building blocks.

Outcome-level equivalence with the reference lives in
tests/property/test_property_auction_backends.py; these tests pin the
pieces — config validation, the CSR/CSC accuracy index, the trace
layout, and the O(pairs) directed-dependence lookup.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import AuctionConfig, ConfigurationError, ReverseAuction, SOACInstance
from repro.auction.engine import batched_greedy_cover
from repro.auction.soac import SparseAccuracy
from repro.core.engine import (
    DirectedDependenceLookup,
    pairwise_dependence_arrays,
)
from repro.core.falsedist import UniformFalseValues
from repro.core.indexing import DatasetIndex


class TestAuctionConfig:
    def test_defaults(self):
        config = AuctionConfig()
        assert config.backend == "vectorized"
        assert config.monopoly_payment_factor == 1.0

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            AuctionConfig(backend="gpu")

    def test_low_monopoly_factor_rejected(self):
        with pytest.raises(ConfigurationError):
            AuctionConfig(monopoly_payment_factor=0.9)

    def test_evolve_revalidates(self):
        config = AuctionConfig()
        assert config.evolve(backend="reference").backend == "reference"
        with pytest.raises(ConfigurationError):
            config.evolve(backend="nope")

    def test_auction_keyword_overrides(self):
        auction = ReverseAuction(
            AuctionConfig(monopoly_payment_factor=2.0), backend="reference"
        )
        assert auction.backend == "reference"
        assert auction.monopoly_payment_factor == 2.0

    def test_auction_rejects_bad_override(self):
        with pytest.raises(ConfigurationError):
            ReverseAuction(monopoly_payment_factor=0.5)


class TestSparseAccuracy:
    def test_layout_matches_dense(self):
        rng = np.random.default_rng(5)
        accuracy = np.where(
            rng.random((9, 7)) < 0.4, rng.uniform(0.1, 1.0, (9, 7)), 0.0
        )
        sparse = SparseAccuracy.from_dense(accuracy)
        assert sparse.nnz == int((accuracy > 0).sum())
        for worker in range(9):
            expected = np.nonzero(accuracy[worker])[0]
            np.testing.assert_array_equal(sparse.tasks_of(worker), expected)
        for task in range(7):
            rows = sparse.col_rows[sparse.col_ptr[task] : sparse.col_ptr[task + 1]]
            np.testing.assert_array_equal(rows, np.nonzero(accuracy[:, task])[0])

    def test_workers_on_unions_columns(self):
        accuracy = np.array(
            [
                [0.5, 0.0, 0.0],
                [0.0, 0.5, 0.0],
                [0.5, 0.5, 0.0],
                [0.0, 0.0, 0.5],
            ]
        )
        sparse = SparseAccuracy.from_dense(accuracy)
        np.testing.assert_array_equal(
            sparse.workers_on(np.array([0, 1])), [0, 1, 2]
        )
        np.testing.assert_array_equal(sparse.workers_on(np.array([2])), [3])
        assert sparse.workers_on(np.array([], dtype=np.int64)).size == 0

    def test_cached_on_instance(self, soac_medium):
        assert soac_medium.sparse_accuracy is soac_medium.sparse_accuracy


class TestCoverTrace:
    def test_trace_shapes_and_rounds(self, soac_medium):
        trace = batched_greedy_cover(soac_medium)
        rounds = trace.n_rounds
        assert trace.winners.shape == (rounds,)
        assert trace.residuals.shape == (rounds, soac_medium.n_tasks)
        assert trace.scores.shape == (rounds, soac_medium.n_workers)
        # Round 0 starts from the raw requirements.
        np.testing.assert_array_equal(
            trace.residuals[0], soac_medium.requirements
        )
        # The recorded score of each selected winner is its marginal at
        # that residual, computed exactly as the reference does.
        for r in range(rounds):
            winner = trace.winners[r]
            expected = np.minimum(
                trace.residuals[r], soac_medium.accuracy[winner]
            ).sum()
            assert trace.scores[r, winner] == expected

    def test_empty_requirements_trace(self):
        instance = SOACInstance(
            worker_ids=("w0",),
            task_ids=("t0",),
            requirements=np.array([0.0]),
            accuracy=np.array([[0.9]]),
            bids=np.array([1.0]),
            costs=np.array([1.0]),
            task_values=np.array([5.0]),
        )
        trace = batched_greedy_cover(instance)
        assert trace.n_rounds == 0
        assert trace.residuals.shape == (0, 1)
        assert trace.scores.shape == (0, 1)


class TestDirectedDependenceLookup:
    def _dependence(self, dataset):
        index = DatasetIndex(dataset)
        arrays = index.arrays
        dependence = pairwise_dependence_arrays(
            arrays,
            arrays.majority_codes(),
            np.full(arrays.n_claims, 0.5),
            copy_prob_r=0.4,
            prior_alpha=0.2,
            collision=UniformFalseValues().collision_array(index),
        )
        return arrays, dependence

    def test_gather_matches_dense_matrix(self, qlf_small):
        arrays, dependence = self._dependence(qlf_small)
        dense = dependence.directed_matrix(arrays)
        n = arrays.index.n_workers
        src, dst = np.meshgrid(np.arange(n), np.arange(n), indexing="ij")
        lookup = DirectedDependenceLookup.build(arrays, dependence)
        np.testing.assert_array_equal(lookup.gather(src, dst), dense)

    def test_memory_is_pairs_not_squared(self, qlf_small):
        arrays, dependence = self._dependence(qlf_small)
        lookup = DirectedDependenceLookup.build(arrays, dependence)
        assert lookup.keys.shape == (2 * arrays.n_pairs,)
        assert lookup.values.shape == (2 * arrays.n_pairs,)

    def test_empty_pairs(self, tiny_dataset):
        dataset = tiny_dataset.subset(worker_ids=["w5"])
        arrays = DatasetIndex(dataset).arrays
        from repro.core.engine import DependenceArrays

        dependence = DependenceArrays(
            p_ab=np.empty(0), p_ba=np.empty(0)
        )
        lookup = DirectedDependenceLookup.build(arrays, dependence)
        out = lookup.gather(np.array([[0]]), np.array([[0]]))
        np.testing.assert_array_equal(out, [[0.0]])
