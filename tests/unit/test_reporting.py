"""Unit tests for the reporting layer (repro.reporting)."""

from __future__ import annotations

import csv
import json

import pytest

from repro.artifacts import RunKey, RunLedger
from repro.reporting import (
    format_table,
    read_json,
    render_chart,
    render_result_table,
    write_csv,
    write_json,
)
from repro.simulation.sweep import ExperimentResult


@pytest.fixture
def demo_result() -> ExperimentResult:
    return ExperimentResult(
        experiment_id="demo",
        title="Demo sweep",
        x_label="size",
        y_label="score",
        x_values=(1.0, 2.0, 4.0),
        series={"alpha": (0.1, 0.2, 0.4), "beta": (0.4, 0.3, 0.2)},
        meta={"note": "hello"},
    )


class TestFormatTable:
    def test_alignment_and_rule(self):
        text = format_table(["name", "value"], [["a", 1.0], ["bb", 2.5]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "-+-" in lines[1]
        assert "1.0000" in lines[2]

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["one"], [["a", "b"]])

    def test_custom_float_format(self):
        text = format_table(["v"], [[3.14159]], float_format="{:.2f}")
        assert "3.14" in text
        assert "3.1416" not in text


class TestRenderResultTable:
    def test_contains_series_and_meta(self, demo_result):
        text = render_result_table(demo_result)
        assert "demo" in text
        assert "alpha" in text and "beta" in text
        assert "note: hello" in text

    def test_row_count(self, demo_result):
        lines = render_result_table(demo_result).splitlines()
        data_lines = [line for line in lines if line.strip().startswith(("1", "2", "4"))]
        assert len(data_lines) == 3


class TestRenderChart:
    def test_contains_markers_and_legend(self, demo_result):
        chart = render_chart(demo_result)
        assert "o = alpha" in chart
        assert "* = beta" in chart
        assert "size" in chart

    def test_axis_labels_present(self, demo_result):
        chart = render_chart(demo_result)
        assert "0.4" in chart  # y max
        assert "1" in chart and "4" in chart  # x range

    def test_dimension_validation(self, demo_result):
        with pytest.raises(ValueError):
            render_chart(demo_result, width=5)
        with pytest.raises(ValueError):
            render_chart(demo_result, height=2)

    def test_flat_series_handled(self):
        flat = ExperimentResult(
            experiment_id="flat",
            title="flat",
            x_label="x",
            y_label="y",
            x_values=(1.0, 2.0),
            series={"c": (3.0, 3.0)},
        )
        assert "c" in render_chart(flat)


class TestExport:
    def test_csv_round_trip(self, demo_result, tmp_path):
        path = write_csv(demo_result, tmp_path / "out" / "demo.csv")
        with open(path, newline="") as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["size", "alpha", "beta"]
        assert float(rows[1][1]) == pytest.approx(0.1)
        assert len(rows) == 4

    def test_json_round_trip(self, demo_result, tmp_path):
        path = write_json(demo_result, tmp_path / "demo.json")
        payload = json.loads(path.read_text())
        assert payload["experiment_id"] == "demo"
        assert payload["series"]["alpha"] == [0.1, 0.2, 0.4]
        assert payload["meta"]["note"] == "hello"

    def test_json_handles_non_serializable_meta(self, tmp_path):
        result = ExperimentResult(
            experiment_id="x",
            title="t",
            x_label="x",
            y_label="y",
            x_values=(1.0,),
            series={"s": (1.0,)},
            meta={"obj": object(), "nested": {"tuple": (1, 2)}},
        )
        payload = json.loads(write_json(result, tmp_path / "x.json").read_text())
        assert isinstance(payload["meta"]["obj"], str)
        assert payload["meta"]["nested"]["tuple"] == [1, 2]


@pytest.fixture
def awkward_result() -> ExperimentResult:
    """Floats chosen to break any decimal-rounding serialization."""
    return ExperimentResult(
        experiment_id="awkward",
        title="Exactness probe",
        x_label="x",
        y_label="y",
        x_values=(0.1, 1.0 / 3.0, 2.0**-40),
        series={
            "sum": (0.1 + 0.2, 1e-300, 5e-324),
            "big": (1.7976931348623157e308, -0.0, 123456789.123456789),
        },
        meta={"instances": 3, "base_seed": 42},
    )


class TestExportInverse:
    def test_read_json_is_exact_inverse(self, awkward_result, tmp_path):
        path = write_json(awkward_result, tmp_path / "a.json")
        back = read_json(path)
        assert back.x_values == awkward_result.x_values
        assert back.series == awkward_result.series
        for name, ys in awkward_result.series.items():
            for original, restored in zip(ys, back.y(name)):
                assert repr(original) == repr(restored)
        assert back.experiment_id == awkward_result.experiment_id
        assert back.x_label == awkward_result.x_label
        assert back.y_label == awkward_result.y_label
        assert back.meta == awkward_result.meta

    def test_write_read_write_is_fixed_point(self, awkward_result, tmp_path):
        first = write_json(awkward_result, tmp_path / "first.json")
        second = write_json(read_json(first), tmp_path / "second.json")
        assert first.read_text() == second.read_text()

    def test_csv_floats_read_back_exactly(self, awkward_result, tmp_path):
        # CSV cells use repr(), so float() inverts them bit for bit.
        path = write_csv(awkward_result, tmp_path / "a.csv")
        with open(path, newline="") as handle:
            header, *rows = list(csv.reader(handle))
        assert header == ["x", "big", "sum"] or header[0] == "x"
        names = header[1:]
        for k, row in enumerate(rows):
            assert float(row[0]) == awkward_result.x_values[k]
            for name, cell in zip(names, row[1:]):
                assert float(cell) == awkward_result.series[name][k]

    def test_ledger_backed_export_equivalence(self, awkward_result, tmp_path):
        # Exporting a result replayed from the ledger writes the same
        # bytes as exporting the original (the acceptance contract for
        # cache-hit `repro run --out`).
        ledger = RunLedger(tmp_path / "store")
        key = RunKey("awkward", {"seed": 42})
        ledger.put_result(key, awkward_result)
        replayed = ledger.get_result(key)
        cold_json = write_json(awkward_result, tmp_path / "cold.json")
        warm_json = write_json(replayed, tmp_path / "warm.json")
        assert cold_json.read_text() == warm_json.read_text()
        cold_csv = write_csv(awkward_result, tmp_path / "cold.csv")
        warm_csv = write_csv(replayed, tmp_path / "warm.csv")
        assert cold_csv.read_text() == warm_csv.read_text()
