"""Unit tests for the false-value distribution models (repro.core.falsedist)."""

from __future__ import annotations

import pytest

from repro import ConfigurationError, Dataset, Task, WorkerProfile
from repro.core import DatasetIndex
from repro.core.falsedist import (
    EmpiricalFalseValues,
    UniformFalseValues,
    ZipfFalseValues,
)


@pytest.fixture
def skewed_index() -> DatasetIndex:
    """One task, domain of 4 values, claims heavily favoring 'popular'."""
    tasks = (Task(task_id="t0", domain=("truth", "popular", "rare", "never")),)
    workers = tuple(WorkerProfile(worker_id=f"w{i}") for i in range(6))
    claims = {
        ("w0", "t0"): "popular",
        ("w1", "t0"): "popular",
        ("w2", "t0"): "popular",
        ("w3", "t0"): "truth",
        ("w4", "t0"): "truth",
        ("w5", "t0"): "rare",
    }
    return DatasetIndex(Dataset(tasks=tasks, workers=workers, claims=claims))


class TestUniform:
    def test_collision_is_inverse_num(self, tiny_dataset):
        index = DatasetIndex(tiny_dataset)
        model = UniformFalseValues()
        assert model.collision_probability(0, index) == pytest.approx(0.5)

    def test_value_probability_uniform(self, skewed_index):
        model = UniformFalseValues()
        for value in ("popular", "rare", "never"):
            assert model.value_probability(
                0, skewed_index, value, "truth"
            ) == pytest.approx(1 / 3)


class TestZipf:
    def test_exponent_validation(self):
        with pytest.raises(ConfigurationError):
            ZipfFalseValues(exponent=-1.0)

    def test_zero_exponent_is_uniform(self, skewed_index):
        model = ZipfFalseValues(exponent=0.0)
        model.prepare(skewed_index)
        probs = [
            model.value_probability(0, skewed_index, v, "truth")
            for v in ("popular", "rare", "never")
        ]
        assert all(p == pytest.approx(probs[0]) for p in probs)

    def test_popular_value_gets_higher_probability(self, skewed_index):
        model = ZipfFalseValues(exponent=1.5)
        model.prepare(skewed_index)
        p_popular = model.value_probability(0, skewed_index, "popular", "truth")
        p_rare = model.value_probability(0, skewed_index, "rare", "truth")
        assert p_popular > p_rare

    def test_probabilities_sum_near_one(self, skewed_index):
        model = ZipfFalseValues(exponent=1.0)
        model.prepare(skewed_index)
        total = sum(
            model.value_probability(0, skewed_index, v, "truth")
            for v in ("popular", "rare", "never")
        )
        assert total == pytest.approx(1.0)

    def test_collision_above_uniform(self, skewed_index):
        # A skewed distribution collides more often than uniform.
        zipf = ZipfFalseValues(exponent=1.5)
        zipf.prepare(skewed_index)
        uniform = UniformFalseValues()
        assert zipf.collision_probability(0, skewed_index) > uniform.collision_probability(
            0, skewed_index
        )

    def test_collision_in_unit_interval(self, skewed_index):
        model = ZipfFalseValues(exponent=2.0)
        model.prepare(skewed_index)
        c = model.collision_probability(0, skewed_index)
        assert 0.0 < c <= 1.0


class TestEmpirical:
    def test_smoothing_validation(self):
        with pytest.raises(ConfigurationError):
            EmpiricalFalseValues(smoothing=0.0)

    def test_probability_tracks_counts(self, skewed_index):
        model = EmpiricalFalseValues(smoothing=0.5)
        model.prepare(skewed_index)
        p_popular = model.value_probability(0, skewed_index, "popular", "truth")
        p_never = model.value_probability(0, skewed_index, "never", "truth")
        assert p_popular > p_never > 0.0

    def test_excludes_assumed_truth(self, skewed_index):
        model = EmpiricalFalseValues()
        model.prepare(skewed_index)
        total = sum(
            model.value_probability(0, skewed_index, v, "truth")
            for v in ("popular", "rare", "never")
        )
        assert total == pytest.approx(1.0)

    def test_collision_positive(self, skewed_index):
        model = EmpiricalFalseValues()
        model.prepare(skewed_index)
        assert 0.0 < model.collision_probability(0, skewed_index) <= 1.0

    def test_none_assumed_truth_supported(self, skewed_index):
        model = EmpiricalFalseValues()
        model.prepare(skewed_index)
        p = model.value_probability(0, skewed_index, "popular", None)
        assert 0.0 < p < 1.0
