"""Unit tests for Bayesian dependence detection (repro.core.dependence).

The key behavioural contracts from Sec. III-A:

- posteriors are proper probabilities over the three hypotheses;
- sharing *false* values is much stronger copying evidence than
  sharing true values (Eq. 8 vs Eq. 7);
- providing different values is evidence of independence (Eq. 13);
- identical data makes the two directions indistinguishable.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import Dataset, Task, WorkerProfile
from repro.core import DatasetIndex
from repro.core.dependence import (
    compute_pairwise_dependence,
    directed_probability,
    total_dependence,
)


def make_pairwise(claims_a: list[str], claims_b: list[str], truths: list[str]):
    """Two workers answering len(truths) tasks with the given values."""
    m = len(truths)
    tasks = tuple(
        Task(task_id=f"t{j}", domain=("A", "B", "C", "D"), truth=truths[j])
        for j in range(m)
    )
    workers = (WorkerProfile(worker_id="a"), WorkerProfile(worker_id="b"))
    claims = {}
    for j in range(m):
        claims[("a", f"t{j}")] = claims_a[j]
        claims[("b", f"t{j}")] = claims_b[j]
    dataset = Dataset(tasks=tasks, workers=workers, claims=claims)
    index = DatasetIndex(dataset)
    accuracy = index.initial_accuracy_matrix(0.6)
    posteriors = compute_pairwise_dependence(
        index,
        truths,
        accuracy,
        copy_prob_r=0.5,
        prior_alpha=0.2,
    )
    return posteriors[(0, 1)]


class TestPosteriorBasics:
    def test_probabilities_normalized(self):
        post = make_pairwise(["A", "B"], ["A", "C"], ["A", "A"])
        assert 0.0 <= post.p_a_to_b <= 1.0
        assert 0.0 <= post.p_b_to_a <= 1.0
        assert post.p_independent == pytest.approx(
            1.0 - post.p_a_to_b - post.p_b_to_a
        )
        assert post.p_dependent == pytest.approx(post.p_a_to_b + post.p_b_to_a)

    def test_identical_data_gives_symmetric_directions(self):
        post = make_pairwise(["A", "B", "B"], ["A", "B", "B"], ["A", "A", "A"])
        assert post.p_a_to_b == pytest.approx(post.p_b_to_a)

    def test_covers_exactly_coanswering_pairs(self, tiny_dataset):
        index = DatasetIndex(tiny_dataset)
        accuracy = index.initial_accuracy_matrix(0.5)
        posteriors = compute_pairwise_dependence(
            index,
            index.majority_vote(),
            accuracy,
            copy_prob_r=0.4,
            prior_alpha=0.2,
        )
        assert set(posteriors) == set(index.pairs)


class TestEvidenceStrength:
    def test_shared_false_values_are_stronger_evidence_than_true(self):
        shared_false = make_pairwise(
            ["B", "B", "B"], ["B", "B", "B"], ["A", "A", "A"]
        )
        shared_true = make_pairwise(
            ["A", "A", "A"], ["A", "A", "A"], ["A", "A", "A"]
        )
        assert shared_false.p_dependent > shared_true.p_dependent

    def test_different_values_push_toward_independence(self):
        agree = make_pairwise(["B", "B"], ["B", "B"], ["A", "A"])
        disagree = make_pairwise(["B", "C"], ["C", "B"], ["A", "A"])
        assert disagree.p_dependent < agree.p_dependent

    def test_more_shared_false_values_more_dependence(self):
        two = make_pairwise(
            ["B", "B", "A", "A"], ["B", "B", "A", "A"], ["A", "A", "A", "A"]
        )
        # Same agreement count, but all four shared values false.
        four = make_pairwise(
            ["B", "B", "B", "B"], ["B", "B", "B", "B"], ["A", "A", "A", "A"]
        )
        assert four.p_dependent > two.p_dependent

    def test_prior_alpha_scales_posterior(self):
        def with_alpha(alpha: float) -> float:
            tasks = tuple(
                Task(task_id=f"t{j}", domain=("A", "B", "C"), truth="A")
                for j in range(3)
            )
            workers = (WorkerProfile(worker_id="a"), WorkerProfile(worker_id="b"))
            claims = {}
            for j in range(3):
                claims[("a", f"t{j}")] = "B"
                claims[("b", f"t{j}")] = "B"
            index = DatasetIndex(
                Dataset(tasks=tasks, workers=workers, claims=claims)
            )
            accuracy = index.initial_accuracy_matrix(0.6)
            post = compute_pairwise_dependence(
                index,
                ["A", "A", "A"],
                accuracy,
                copy_prob_r=0.5,
                prior_alpha=alpha,
            )[(0, 1)]
            return post.p_dependent

        assert with_alpha(0.5) > with_alpha(0.1)


class TestParameterValidation:
    def test_copy_prob_bounds(self, tiny_dataset):
        index = DatasetIndex(tiny_dataset)
        accuracy = index.initial_accuracy_matrix(0.5)
        for bad_r in (0.0, 1.0, -0.2, 1.5):
            with pytest.raises(ValueError):
                compute_pairwise_dependence(
                    index,
                    index.majority_vote(),
                    accuracy,
                    copy_prob_r=bad_r,
                    prior_alpha=0.2,
                )

    def test_alpha_bounds(self, tiny_dataset):
        index = DatasetIndex(tiny_dataset)
        accuracy = index.initial_accuracy_matrix(0.5)
        for bad_alpha in (0.0, 1.0):
            with pytest.raises(ValueError):
                compute_pairwise_dependence(
                    index,
                    index.majority_vote(),
                    accuracy,
                    copy_prob_r=0.4,
                    prior_alpha=bad_alpha,
                )

    def test_extreme_accuracy_does_not_blow_up(self, tiny_dataset):
        index = DatasetIndex(tiny_dataset)
        accuracy = np.ones((index.n_workers, index.n_tasks))
        posteriors = compute_pairwise_dependence(
            index,
            index.majority_vote(),
            accuracy,
            copy_prob_r=0.4,
            prior_alpha=0.2,
        )
        for post in posteriors.values():
            assert np.isfinite(post.p_a_to_b)
            assert np.isfinite(post.p_b_to_a)


class TestLookupHelpers:
    def test_directed_probability_orientation(self, tiny_dataset):
        index = DatasetIndex(tiny_dataset)
        accuracy = index.initial_accuracy_matrix(0.5)
        posteriors = compute_pairwise_dependence(
            index,
            index.majority_vote(),
            accuracy,
            copy_prob_r=0.4,
            prior_alpha=0.2,
        )
        post = posteriors[(2, 3)]
        assert directed_probability(posteriors, 2, 3) == post.p_a_to_b
        assert directed_probability(posteriors, 3, 2) == post.p_b_to_a

    def test_directed_probability_missing_pair_is_zero(self):
        assert directed_probability({}, 0, 1) == 0.0
        assert directed_probability({}, 1, 1) == 0.0

    def test_total_dependence_symmetric(self, tiny_dataset):
        index = DatasetIndex(tiny_dataset)
        accuracy = index.initial_accuracy_matrix(0.5)
        posteriors = compute_pairwise_dependence(
            index,
            index.majority_vote(),
            accuracy,
            copy_prob_r=0.4,
            prior_alpha=0.2,
        )
        assert total_dependence(posteriors, 2, 3) == total_dependence(
            posteriors, 3, 2
        )


class TestCopierScenario:
    def test_copier_pair_stands_out(self, tiny_dataset):
        """w3-w4 (identical, wrong half the time) must out-score w1-w2."""
        index = DatasetIndex(tiny_dataset)
        accuracy = index.initial_accuracy_matrix(0.5)
        truths = ["A", "A", "A", "A"]  # actual ground truth
        posteriors = compute_pairwise_dependence(
            index, truths, accuracy, copy_prob_r=0.8, prior_alpha=0.2
        )
        copier_pair = total_dependence(posteriors, 2, 3)  # w3, w4
        honest_pair = total_dependence(posteriors, 0, 1)  # w1, w2
        assert copier_pair > honest_pair
        assert copier_pair > 0.5
