"""Unit tests for the parallel executor's serial-path contract."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.simulation.executor import (
    available_cpus,
    parallel_map,
    resolve_parallel,
    run_jobs,
)


def _double(x: int) -> int:
    return 2 * x


class TestResolveParallel:
    def test_none_means_all_cpus(self):
        assert resolve_parallel(None) == max(available_cpus(), 1)

    def test_explicit_passthrough(self):
        assert resolve_parallel(3) == 3

    @pytest.mark.parametrize("bad", [0, -1])
    def test_rejects_non_positive(self, bad):
        with pytest.raises(ConfigurationError):
            resolve_parallel(bad)


class TestSerialPath:
    def test_matches_list_comprehension(self):
        items = list(range(7))
        assert parallel_map(_double, items, parallel=1) == [2 * x for x in items]

    def test_empty_items(self):
        assert parallel_map(_double, [], parallel=1) == []

    def test_single_item_never_spawns(self):
        # One item short-circuits to in-process execution even with
        # parallel > 1 — closures stay legal in that case.
        assert parallel_map(lambda x: x + 1, [41], parallel=8) == [42]

    def test_preserves_order(self):
        items = [5, 3, 9, 1]
        assert parallel_map(_double, items, parallel=1) == [10, 6, 18, 2]


class TestRunJobs:
    def test_heterogeneous_jobs_in_order(self):
        jobs = [(_double, (4,)), (max, (1, 9)), (min, (1, 9))]
        assert run_jobs(jobs, parallel=1) == [8, 9, 1]

    def test_bare_callables(self):
        assert run_jobs([list, dict], parallel=1) == [[], {}]
