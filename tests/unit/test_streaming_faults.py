"""Fault-injector semantics: rules, counting, seeding, env activation.

The injector is the scaffolding the kill-and-recover differential
suite stands on (DESIGN.md §15), so its own contract is pinned here:
rule parsing, nth-pass counting under threads, deterministic partial
cuts, and the inert-by-default guarantee that keeps production paths
fault-free.
"""

from __future__ import annotations

import threading

import pytest

from repro.errors import ConfigurationError
from repro.streaming.faults import (
    FAULT_POINTS,
    FaultInjector,
    FaultRule,
    InjectedCrash,
    get_injector,
    set_injector,
)


@pytest.fixture(autouse=True)
def _isolate_process_injector():
    previous = set_injector(None)
    yield
    set_injector(previous)


class TestRuleParsing:
    def test_from_spec_parses_point_action_nth(self):
        injector = FaultInjector.from_spec(
            "journal.post_append:crash@3, store.mid_refresh:ioerror"
        )
        assert injector.active
        for _ in range(2):
            injector.fire("journal.post_append")  # passes 1 and 2: inert
        with pytest.raises(InjectedCrash):
            injector.fire("journal.post_append")
        with pytest.raises(OSError):
            injector.fire("store.mid_refresh")

    def test_empty_spec_is_inert(self):
        injector = FaultInjector.from_spec("")
        assert not injector.active
        for point in FAULT_POINTS:
            injector.fire(point)
        assert injector.fired == []

    def test_malformed_specs_are_rejected(self):
        for spec in ("nocolon", "point:", ":action", "p:crash@x", "p:frob"):
            with pytest.raises(ConfigurationError):
                FaultInjector.from_spec(spec)

    def test_rule_validates_action_and_nth(self):
        with pytest.raises(ConfigurationError):
            FaultRule(point="p", action="explode")
        with pytest.raises(ConfigurationError):
            FaultRule(point="p", action="crash", nth=0)


class TestFiring:
    def test_crash_carries_its_point(self):
        injector = FaultInjector.from_spec("journal.pre_append:crash")
        with pytest.raises(InjectedCrash) as exc_info:
            injector.fire("journal.pre_append")
        assert exc_info.value.point == "journal.pre_append"
        assert injector.fired == [("journal.pre_append", "crash")]

    def test_each_rule_fires_once(self):
        injector = FaultInjector.from_spec("p:crash@2")
        injector.fire("p")
        with pytest.raises(InjectedCrash):
            injector.fire("p")
        injector.fire("p")  # pass 3: the @2 rule is spent
        assert len(injector.fired) == 1

    def test_injected_crash_is_not_a_repro_error(self):
        # The HTTP layer must treat it as an unexpected death (500),
        # never as a polite client error (400).
        from repro.errors import ReproError

        assert not issubclass(InjectedCrash, ReproError)
        assert issubclass(InjectedCrash, RuntimeError)

    def test_nth_counting_is_thread_safe(self):
        injector = FaultInjector.from_spec("p:crash@100")
        crashes = []

        def worker():
            for _ in range(25):
                try:
                    injector.fire("p")
                except InjectedCrash:
                    crashes.append(1)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(crashes) == 1  # exactly one pass was the 100th


class TestPartialCut:
    def test_cut_is_a_proper_prefix(self):
        injector = FaultInjector.from_spec("w:partial", seed=7)
        cut = injector.partial_cut("w", 100)
        assert cut is not None and 1 <= cut < 100

    def test_cut_is_seed_deterministic(self):
        cuts = [
            FaultInjector.from_spec("w:partial", seed=42).partial_cut("w", 500)
            for _ in range(3)
        ]
        assert len(set(cuts)) == 1

    def test_no_rule_means_no_cut(self):
        injector = FaultInjector.from_spec("other:partial")
        assert injector.partial_cut("w", 100) is None

    def test_tiny_writes_are_never_cut(self):
        injector = FaultInjector.from_spec("w:partial")
        assert injector.partial_cut("w", 1) is None


class TestProcessInjector:
    def test_env_spec_activates(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "journal.post_append:crash")
        monkeypatch.setenv("REPRO_FAULTS_SEED", "9")
        set_injector(None)  # force a re-read of the environment
        injector = get_injector()
        assert injector.active
        with pytest.raises(InjectedCrash):
            injector.fire("journal.post_append")

    def test_default_is_inert(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        set_injector(None)
        assert not get_injector().active

    def test_set_injector_returns_previous(self):
        mine = FaultInjector.from_spec("p:crash")
        previous = set_injector(mine)
        try:
            assert get_injector() is mine
        finally:
            set_injector(previous)
