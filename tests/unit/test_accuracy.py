"""Unit tests for value posteriors and accuracy updates (repro.core.accuracy)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core import DatasetIndex
from repro.core.accuracy import (
    discounted_value_posteriors,
    update_accuracy_matrix,
    value_posteriors,
    worker_mean_accuracy,
)


class TestValuePosteriors:
    def test_normalized_per_task(self, tiny_dataset):
        index = DatasetIndex(tiny_dataset)
        accuracy = index.initial_accuracy_matrix(0.6)
        posteriors = value_posteriors(index, accuracy)
        for j, table in enumerate(posteriors):
            if index.value_groups[j]:
                assert sum(table.values()) == pytest.approx(1.0)

    def test_majority_value_wins_at_equal_accuracy(self, tiny_dataset):
        index = DatasetIndex(tiny_dataset)
        accuracy = index.initial_accuracy_matrix(0.6)
        posteriors = value_posteriors(index, accuracy)
        # t1: A supported by 3 workers, B by 2.
        assert posteriors[1]["A"] > posteriors[1]["B"]

    def test_matches_eq20_closed_form(self, tiny_dataset):
        """The exact Bayes computation must equal the paper's Eq. 20
        under the uniform false-value assumption."""
        index = DatasetIndex(tiny_dataset)
        rng = np.random.default_rng(5)
        accuracy = index.initial_accuracy_matrix(0.5)
        for i, claims in enumerate(index.claims_by_worker):
            for j in claims:
                accuracy[i, j] = rng.uniform(0.2, 0.9)
        posteriors = value_posteriors(index, accuracy)
        for j in range(index.n_tasks):
            num = float(index.num_false[j])
            scores = {}
            for value, group in index.value_groups[j].items():
                scores[value] = math.prod(
                    num * accuracy[i, j] / (1.0 - accuracy[i, j]) for i in group
                )
            total = sum(scores.values())
            for value, score in scores.items():
                assert posteriors[j][value] == pytest.approx(score / total)

    def test_higher_accuracy_supporter_beats_crowd(self):
        """One very accurate worker can outweigh two mediocre ones."""
        from repro import Dataset, Task, WorkerProfile

        tasks = (Task(task_id="t0", domain=("A", "B", "C")),)
        workers = tuple(WorkerProfile(worker_id=f"w{i}") for i in range(3))
        claims = {
            ("w0", "t0"): "A",
            ("w1", "t0"): "B",
            ("w2", "t0"): "B",
        }
        index = DatasetIndex(Dataset(tasks=tasks, workers=workers, claims=claims))
        accuracy = np.array([[0.95], [0.4], [0.4]])
        posteriors = value_posteriors(index, accuracy)
        assert posteriors[0]["A"] > posteriors[0]["B"]

    def test_empty_task_gets_empty_table(self):
        from repro import Dataset, Task, WorkerProfile

        tasks = (Task(task_id="t0"), Task(task_id="t1"))
        workers = (WorkerProfile(worker_id="w"),)
        index = DatasetIndex(
            Dataset(tasks=tasks, workers=workers, claims={("w", "t0"): "x"})
        )
        posteriors = value_posteriors(index, np.full((1, 2), 0.5))
        assert posteriors[1] == {}


class TestDiscountedPosteriors:
    def _full_independence(self, index):
        return [
            {value: {i: 1.0 for i in group} for value, group in groups.items()}
            for groups in index.value_groups
        ]

    def test_equals_plain_when_independence_is_one(self, tiny_dataset):
        index = DatasetIndex(tiny_dataset)
        accuracy = index.initial_accuracy_matrix(0.6)
        plain = value_posteriors(index, accuracy)
        discounted = discounted_value_posteriors(
            index, accuracy, self._full_independence(index)
        )
        for j in range(index.n_tasks):
            for value in plain[j]:
                assert discounted[j][value] == pytest.approx(plain[j][value])

    def test_discount_weakens_discounted_value(self, tiny_dataset):
        index = DatasetIndex(tiny_dataset)
        accuracy = index.initial_accuracy_matrix(0.6)
        independence = self._full_independence(index)
        # Mark one of the B-supporters on t1 as a near-certain copier.
        b_group = index.value_groups[1]["B"]
        independence[1]["B"][b_group[-1]] = 0.05
        plain = discounted_value_posteriors(
            index, accuracy, self._full_independence(index)
        )
        discounted = discounted_value_posteriors(index, accuracy, independence)
        assert discounted[1]["B"] < plain[1]["B"]
        assert discounted[1]["A"] > plain[1]["A"]

    def test_normalized(self, tiny_dataset):
        index = DatasetIndex(tiny_dataset)
        accuracy = index.initial_accuracy_matrix(0.6)
        tables = discounted_value_posteriors(
            index, accuracy, self._full_independence(index)
        )
        for j, table in enumerate(tables):
            if index.value_groups[j]:
                assert sum(table.values()) == pytest.approx(1.0)


class TestAccuracyUpdate:
    def test_worker_granularity_broadcasts_mean(self, tiny_dataset):
        index = DatasetIndex(tiny_dataset)
        posteriors = value_posteriors(index, index.initial_accuracy_matrix(0.6))
        matrix = update_accuracy_matrix(index, posteriors, granularity="worker")
        for i, claims in enumerate(index.claims_by_worker):
            values = [matrix[i, j] for j in claims]
            if values:
                assert max(values) == pytest.approx(min(values))

    def test_task_granularity_uses_per_task_posterior(self, tiny_dataset):
        index = DatasetIndex(tiny_dataset)
        posteriors = value_posteriors(index, index.initial_accuracy_matrix(0.6))
        matrix = update_accuracy_matrix(index, posteriors, granularity="task")
        for i, claims in enumerate(index.claims_by_worker):
            for j, value in claims.items():
                assert matrix[i, j] == pytest.approx(posteriors[j][value])

    def test_unanswered_cells_stay_zero(self, tiny_dataset):
        index = DatasetIndex(tiny_dataset)
        posteriors = value_posteriors(index, index.initial_accuracy_matrix(0.6))
        matrix = update_accuracy_matrix(index, posteriors)
        assert matrix[4, 2] == 0.0  # w5 did not answer t2
        assert matrix[4, 3] == 0.0

    def test_reliable_workers_score_higher(self, tiny_dataset):
        index = DatasetIndex(tiny_dataset)
        posteriors = value_posteriors(index, index.initial_accuracy_matrix(0.6))
        matrix = update_accuracy_matrix(index, posteriors)
        means = worker_mean_accuracy(index, matrix)
        # w1 (always in the majority) must beat w3 (wrong on 3 tasks).
        assert means[0] > means[2]

    def test_unknown_granularity_rejected(self, tiny_dataset):
        index = DatasetIndex(tiny_dataset)
        posteriors = value_posteriors(index, index.initial_accuracy_matrix(0.6))
        with pytest.raises(ValueError):
            update_accuracy_matrix(index, posteriors, granularity="per-claim")

    def test_idle_worker_mean_is_zero(self):
        from repro import Dataset, Task, WorkerProfile

        tasks = (Task(task_id="t0"),)
        workers = (WorkerProfile(worker_id="busy"), WorkerProfile(worker_id="idle"))
        index = DatasetIndex(
            Dataset(tasks=tasks, workers=workers, claims={("busy", "t0"): "x"})
        )
        means = worker_mean_accuracy(index, np.array([[0.7], [0.0]]))
        assert means[1] == 0.0
