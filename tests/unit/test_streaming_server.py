"""Unit tests for the campaign store and HTTP service
(repro.streaming.campaign / repro.streaming.server)."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro import DateConfig
from repro.streaming import (
    CampaignStore,
    ClaimBatch,
    DuplicateCampaignError,
    StreamingApp,
    UnknownCampaignError,
    batch_to_json,
    make_server,
    replay_batches,
)
from repro.streaming.server import config_from_spec


@pytest.fixture
def store():
    return CampaignStore()


@pytest.fixture
def app(store):
    return StreamingApp(store)


@pytest.fixture
def replay(qlf_small):
    return replay_batches(qlf_small, 3)


class TestCampaignStore:
    def test_create_get_evict(self, store):
        campaign = store.create("c1")
        assert store.get("c1") is campaign
        assert "c1" in store
        store.evict("c1")
        assert "c1" not in store

    def test_duplicate_create_rejected(self, store):
        store.create("c1")
        with pytest.raises(DuplicateCampaignError):
            store.create("c1")

    def test_unknown_campaign_raises(self, store):
        with pytest.raises(UnknownCampaignError):
            store.get("nope")
        with pytest.raises(UnknownCampaignError):
            store.evict("nope")
        with pytest.raises(UnknownCampaignError):
            store.ingest("nope", ClaimBatch())

    def test_ingest_and_estimate(self, store, replay):
        store.create("c1")
        for batch in replay:
            store.ingest("c1", batch)
        snapshot = store.estimate("c1")
        refreshed = store.estimate("c1", refresh=True)
        assert set(snapshot.truths) == set(refreshed.truths)
        assert refreshed.method == "DATE"

    def test_snapshot_is_json_safe(self, store, replay):
        store.create("c1")
        store.ingest("c1", replay[0])
        snapshot = store.snapshot("c1")
        json.dumps(snapshot)  # must not raise
        assert snapshot["campaign_id"] == "c1"
        assert snapshot["claims"] == replay[0].n_claims

    def test_lru_eviction(self):
        store = CampaignStore(max_campaigns=2)
        store.create("a")
        store.create("b")
        store.get("a")  # touch: "b" becomes least recently used
        store.create("c")
        assert "a" in store and "c" in store
        assert "b" not in store

    def test_auction_runs_on_refreshed_estimate(self, store, qlf_small):
        store.create("c1")
        store.ingest(
            "c1",
            ClaimBatch(
                claims=qlf_small.claims,
                tasks=qlf_small.tasks,
                workers=qlf_small.workers,
            ),
        )
        outcome = store.auction("c1", requirement_cap=0.7)
        assert outcome.auction.n_winners > 0
        cold_truths = store.estimate("c1", refresh=True).truths
        assert outcome.estimated_truths == cold_truths

    def test_per_campaign_config(self, store):
        campaign = store.create("c1", config=DateConfig(copy_prob_r=0.7))
        assert campaign.online.config.copy_prob_r == 0.7


class TestConfigFromSpec:
    def test_aliases(self):
        base = DateConfig()
        config = config_from_spec(
            {"r": 0.6, "alpha": 0.3, "epsilon": 0.4, "max_iterations": 7}, base
        )
        assert config.copy_prob_r == 0.6
        assert config.prior_alpha == 0.3
        assert config.initial_accuracy == 0.4
        assert config.max_iterations == 7

    def test_unknown_field_rejected(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            config_from_spec({"nonsense": 1}, DateConfig())

    def test_none_returns_base(self):
        base = DateConfig()
        assert config_from_spec(None, base) is base


class TestStreamingApp:
    def test_health(self, app):
        status, body = app.handle("GET", "/health")
        assert status == 200
        assert body["status"] == "ok"
        assert body["campaigns"] == 0

    def test_create_list_delete(self, app):
        status, body = app.handle("POST", "/campaigns", {"campaign_id": "c1"})
        assert status == 201 and body["campaign_id"] == "c1"
        status, body = app.handle("GET", "/campaigns")
        assert status == 200 and len(body["campaigns"]) == 1
        status, body = app.handle("DELETE", "/campaigns/c1")
        assert status == 200
        assert len(app.store) == 0

    def test_create_requires_campaign_id(self, app):
        status, body = app.handle("POST", "/campaigns", {})
        assert status == 400

    def test_empty_store_not_discarded(self):
        # CampaignStore defines __len__, so a configured-but-empty
        # store is falsy; the app must still adopt it (`store or ...`
        # silently replaced it with a default store once).
        configured = CampaignStore(algorithm="FDS", refresh_every=3)
        app = StreamingApp(configured)
        assert app.store is configured
        status, body = app.handle(
            "POST", "/campaigns", {"campaign_id": "c1"}
        )
        assert status == 201
        assert body["algorithm"] == "FDS"

    def test_per_campaign_algorithm(self, app):
        status, body = app.handle(
            "POST", "/campaigns", {"campaign_id": "c1", "algorithm": "lca"}
        )
        assert status == 201 and body["algorithm"] == "LCA"
        status, body = app.handle(
            "POST", "/campaigns", {"campaign_id": "c2", "algorithm": None}
        )
        assert status == 201 and body["algorithm"] == "DATE"
        status, body = app.handle(
            "POST", "/campaigns", {"campaign_id": "bad", "algorithm": "nope"}
        )
        assert status == 400

    def test_duplicate_create_conflicts(self, app):
        app.handle("POST", "/campaigns", {"campaign_id": "c1"})
        status, body = app.handle("POST", "/campaigns", {"campaign_id": "c1"})
        assert status == 409

    def test_unknown_campaign_404(self, app):
        for method, path in [
            ("GET", "/campaigns/zz"),
            ("GET", "/campaigns/zz/truths"),
            ("POST", "/campaigns/zz/claims"),
            ("DELETE", "/campaigns/zz"),
        ]:
            status, _ = app.handle(method, path, {})
            assert status == 404, (method, path)

    def test_unknown_route_404(self, app):
        status, body = app.handle("GET", "/nope")
        assert status == 404
        status, body = app.handle("PATCH", "/campaigns")
        assert status == 404

    def test_full_campaign_flow(self, app, replay, qlf_small):
        app.handle(
            "POST", "/campaigns", {"campaign_id": "c1", "config": {"r": 0.4}}
        )
        for batch in replay:
            status, body = app.handle(
                "POST", "/campaigns/c1/claims",
                batch_to_json(batch, include_truth=True),
            )
            assert status == 200
            assert body["new_claims"] == batch.n_claims
        status, truths = app.handle("GET", "/campaigns/c1/truths")
        assert status == 200 and truths["truths"]
        status, workers = app.handle("GET", "/campaigns/c1/workers")
        assert status == 200
        assert set(workers["worker_accuracy"]) == {
            w.worker_id for w in qlf_small.workers
        }
        status, refreshed = app.handle("POST", "/campaigns/c1/refresh", {})
        assert status == 200 and refreshed["converged"] is not None
        status, auction = app.handle(
            "POST", "/campaigns/c1/auction", {"cap": 0.7}
        )
        assert status == 200 and auction["winners"]
        assert set(auction["payments"]) == set(auction["winners"])

    def test_auction_backend_selection(self, app, replay):
        """Both auction engines are reachable over the API and agree."""
        app.handle("POST", "/campaigns", {"campaign_id": "c1"})
        for batch in replay:
            app.handle(
                "POST", "/campaigns/c1/claims",
                batch_to_json(batch, include_truth=True),
            )
        status, default = app.handle(
            "POST", "/campaigns/c1/auction", {"cap": 0.7}
        )
        assert status == 200
        status, reference = app.handle(
            "POST",
            "/campaigns/c1/auction",
            {"cap": 0.7, "backend": "reference"},
        )
        assert status == 200
        assert reference["winners"] == default["winners"]
        assert reference["payments"] == default["payments"]

    def test_unknown_auction_backend_400(self, app):
        app.handle("POST", "/campaigns", {"campaign_id": "c1"})
        status, body = app.handle(
            "POST", "/campaigns/c1/auction", {"backend": "gpu"}
        )
        assert status == 400 and "error" in body

    def test_malformed_batch_400(self, app):
        app.handle("POST", "/campaigns", {"campaign_id": "c1"})
        status, body = app.handle(
            "POST", "/campaigns/c1/claims", {"claims": [{"worker": "w"}]}
        )
        assert status == 400 and "error" in body

    def test_percent_encoded_ids_and_query_strings(self, app):
        app.handle("POST", "/campaigns", {"campaign_id": "my campaign"})
        status, body = app.handle("GET", "/campaigns/my%20campaign?verbose=1")
        assert status == 200 and body["campaign_id"] == "my campaign"
        status, _ = app.handle("GET", "/campaigns/my%20campaign/truths")
        assert status == 200

    def test_malformed_config_values_400(self, app):
        status, body = app.handle(
            "POST", "/campaigns", {"campaign_id": "c9", "config": {"r": "abc"}}
        )
        assert status == 400 and "error" in body

    def test_malformed_scalars_400(self, app):
        # Non-numeric values inside well-shaped payloads must map to a
        # 400, not escape as ValueError/TypeError.
        app.handle("POST", "/campaigns", {"campaign_id": "c1"})
        status, body = app.handle(
            "POST", "/campaigns/c1/auction", {"cap": "abc"}
        )
        assert status == 400 and "error" in body
        status, body = app.handle(
            "POST",
            "/campaigns",
            {
                "campaign_id": "c2",
                "tasks": [{"task_id": "t", "requirement": "not-a-number"}],
            },
        )
        assert status == 400 and "error" in body
        status, body = app.handle(
            "POST", "/campaigns", {"campaign_id": "c3", "refresh_every": "four"}
        )
        assert status == 400 and "error" in body

    def test_concurrent_reads_during_ingest(self, app, qlf_small):
        # Reader routes must go through the campaign lock: unlocked
        # reads race the index/accuracy swap inside OnlineDATE.ingest.
        import threading

        app.handle("POST", "/campaigns", {"campaign_id": "c1"})
        batches = replay_batches(qlf_small, 8)
        errors: list[BaseException] = []
        stop = threading.Event()

        def reader():
            while not stop.is_set():
                try:
                    status, _ = app.handle("GET", "/campaigns/c1/workers")
                    assert status == 200
                    status, _ = app.handle("GET", "/campaigns/c1/truths")
                    assert status == 200
                except BaseException as exc:  # noqa: BLE001 - collected
                    errors.append(exc)
                    return

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        try:
            for batch in batches:
                status, _ = app.handle(
                    "POST", "/campaigns/c1/claims", batch_to_json(batch)
                )
                assert status == 200
        finally:
            stop.set()
            for thread in threads:
                thread.join()
        assert not errors, errors[:1]

    def test_infeasible_auction_400(self, app):
        # A requirement no worker set can cover; without a cap the
        # InfeasibleCoverageError maps to a 400.
        app.handle(
            "POST",
            "/campaigns",
            {
                "campaign_id": "c1",
                "tasks": [{"task_id": "t", "requirement": 1000.0}],
                "workers": [{"worker_id": "w"}],
            },
        )
        app.handle(
            "POST",
            "/campaigns/c1/claims",
            {"claims": [{"worker": "w", "task": "t", "value": "x"}]},
        )
        status, body = app.handle("POST", "/campaigns/c1/auction", {})
        assert status == 400 and "error" in body


class TestLiveServer:
    @pytest.fixture
    def server(self, app):
        server = make_server(app, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        yield server
        server.shutdown()
        server.server_close()

    def request(self, server, method, path, payload=None):
        port = server.server_address[1]
        data = json.dumps(payload).encode() if payload is not None else None
        request = urllib.request.Request(
            f"http://127.0.0.1:{port}{path}",
            data=data,
            method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request) as response:
                return response.status, json.loads(response.read())
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read())

    def test_end_to_end_over_sockets(self, server, replay):
        status, body = self.request(server, "GET", "/health")
        assert status == 200 and body["status"] == "ok"
        status, body = self.request(
            server, "POST", "/campaigns", {"campaign_id": "live"}
        )
        assert status == 201
        status, body = self.request(
            server, "POST", "/campaigns/live/claims",
            batch_to_json(replay[0], include_truth=True),
        )
        assert status == 200 and body["new_claims"] == replay[0].n_claims
        status, body = self.request(server, "GET", "/campaigns/live/truths")
        assert status == 200 and body["truths"]
        status, body = self.request(server, "GET", "/campaigns/missing")
        assert status == 404
        status, body = self.request(server, "DELETE", "/campaigns/live")
        assert status == 200

    def test_invalid_json_body_400(self, server):
        port = server.server_address[1]
        request = urllib.request.Request(
            f"http://127.0.0.1:{port}/campaigns",
            data=b"{not json",
            method="POST",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 400


@pytest.fixture
def enabled_registry():
    """Swap in a fresh enabled registry for the duration of one test."""
    from repro.obs import MetricsRegistry, set_registry

    registry = MetricsRegistry(enabled=True)
    previous = set_registry(registry)
    yield registry
    set_registry(previous)


class TestObservabilityRoutes:
    def test_healthz(self, app):
        status, body = app.handle("GET", "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["uptime_seconds"] >= 0.0
        assert body["campaigns"] == 0
        assert isinstance(body["metrics_enabled"], bool)

    def test_metrics_route_returns_exposition_text(self, app, enabled_registry):
        app.handle("POST", "/campaigns", {"campaign_id": "c1"})
        status, body = app.handle("GET", "/metrics")
        assert status == 200
        assert isinstance(body, str)
        assert "# TYPE http_requests_total counter" in body
        assert "# TYPE streaming_campaigns_live gauge" in body

    def test_metrics_on_disabled_registry_is_empty_text(self, app):
        from repro.obs import MetricsRegistry, set_registry

        previous = set_registry(MetricsRegistry(enabled=False))
        try:
            status, body = app.handle("GET", "/metrics")
        finally:
            set_registry(previous)
        assert status == 200
        assert body == ""

    def test_request_metrics_use_route_templates(self, app, enabled_registry):
        app.handle("POST", "/campaigns", {"campaign_id": "one two"})
        app.handle("GET", "/campaigns/one%20two")
        app.handle("GET", "/campaigns/one%20two/truths")
        app.handle("GET", "/campaigns/missing/truths")
        text = app.handle("GET", "/metrics")[1]
        # Campaign ids collapse into one {id} template per route, so the
        # label space stays bounded no matter how many campaigns exist.
        assert 'route="/campaigns/{id}"' in text
        assert 'route="/campaigns/{id}/truths"' in text
        assert "one two" not in text
        assert (
            'http_requests_total{method="GET",'
            'route="/campaigns/{id}/truths",status="200"} 1' in text
        )
        assert (
            'http_requests_total{method="GET",'
            'route="/campaigns/{id}/truths",status="404"} 1' in text
        )

    def test_ingest_records_per_campaign_counters(
        self, app, replay, enabled_registry
    ):
        app.handle("POST", "/campaigns", {"campaign_id": "c1"})
        for batch in replay:
            app.handle(
                "POST", "/campaigns/c1/claims",
                batch_to_json(batch, include_truth=True),
            )
        claims = enabled_registry.counter(
            "streaming_claims_ingested_total", labels={"campaign": "c1"}
        )
        assert claims.value == sum(batch.n_claims for batch in replay)
        batches = enabled_registry.counter(
            "streaming_ingest_batches_total", labels={"campaign": "c1"}
        )
        assert batches.value == len(replay)

    def test_live_metrics_scrape_content_type(self, enabled_registry, app):
        server = make_server(app, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            port = server.server_address[1]
            with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/metrics"
            ) as response:
                assert response.status == 200
                content_type = response.headers["Content-Type"]
                body = response.read().decode("utf-8")
        finally:
            server.shutdown()
            server.server_close()
        assert content_type.startswith("text/plain")
        assert "version=0.0.4" in content_type
        assert "http_requests_total" in body or body == ""
