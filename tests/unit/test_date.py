"""Unit tests for the DATE driver and its configuration (repro.core.date)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import DATE, ConfigurationError, DateConfig, discover_truth
from repro.core import DatasetIndex, ZipfFalseValues


class TestDateConfig:
    def test_defaults_match_paper(self):
        config = DateConfig()
        assert config.copy_prob_r == 0.4
        assert config.initial_accuracy == 0.5
        assert config.prior_alpha == 0.2
        assert config.max_iterations == 100

    @pytest.mark.parametrize(
        "field, value",
        [
            ("copy_prob_r", 0.0),
            ("copy_prob_r", 1.0),
            ("initial_accuracy", 0.0),
            ("initial_accuracy", 1.0),
            ("prior_alpha", 0.0),
            ("prior_alpha", 1.0),
            ("max_iterations", 0),
            ("accuracy_clamp", (0.0, 0.5)),
            ("accuracy_clamp", (0.6, 0.5)),
            ("granularity", "per-claim"),
            ("ordering", "random"),
            ("discount_mode", "either"),
            ("similarity_weight", 1.5),
        ],
    )
    def test_validation(self, field, value):
        with pytest.raises(ConfigurationError):
            DateConfig(**{field: value})

    def test_similarity_weight_requires_function(self):
        with pytest.raises(ConfigurationError):
            DateConfig(similarity_weight=0.5, similarity=None)

    def test_false_values_type_checked(self):
        with pytest.raises(ConfigurationError):
            DateConfig(false_values="uniform")  # type: ignore[arg-type]

    def test_evolve_revalidates(self):
        config = DateConfig()
        assert config.evolve(copy_prob_r=0.7).copy_prob_r == 0.7
        with pytest.raises(ConfigurationError):
            config.evolve(copy_prob_r=2.0)


class TestDateRun:
    def test_result_structure(self, tiny_dataset):
        result = DATE().run(tiny_dataset)
        assert result.method == "DATE"
        assert set(result.truths) == {"t0", "t1", "t2", "t3"}
        assert result.accuracy_matrix.shape == (5, 4)
        assert set(result.worker_accuracy) == {"w1", "w2", "w3", "w4", "w5"}
        assert result.converged
        assert result.iterations >= 1

    def test_recovers_truth_against_copiers(self, tiny_dataset):
        """w3+w4 (copier pair) tie or outvote honest workers on t2/t3;
        DATE must still recover 'A' everywhere."""
        config = DateConfig(copy_prob_r=0.8, prior_alpha=0.3)
        result = DATE(config).run(tiny_dataset)
        assert result.truths == {f"t{j}": "A" for j in range(4)}
        assert result.precision() == 1.0

    def test_copier_pair_has_high_dependence(self, tiny_dataset):
        result = DATE(DateConfig(copy_prob_r=0.8)).run(tiny_dataset)
        assert ("w3", "w4") in result.dependence
        copier = result.dependence[("w3", "w4")].p_dependent
        honest = result.dependence[("w1", "w2")].p_dependent
        assert copier > honest

    def test_confidence_in_unit_interval(self, tiny_dataset):
        result = DATE().run(tiny_dataset)
        for value in result.confidence.values():
            assert 0.0 <= value <= 1.0

    def test_accuracy_matrix_zero_for_unanswered(self, tiny_dataset):
        result = DATE().run(tiny_dataset)
        i = result.worker_ids.index("w5")
        j = result.task_ids.index("t2")
        assert result.accuracy_matrix[i, j] == 0.0

    def test_deterministic(self, qlf_small):
        a = DATE().run(qlf_small)
        b = DATE().run(qlf_small)
        assert a.truths == b.truths
        assert np.array_equal(a.accuracy_matrix, b.accuracy_matrix)

    def test_shared_index_gives_same_result(self, qlf_small):
        index = DatasetIndex(qlf_small)
        a = DATE().run(qlf_small, index=index)
        b = DATE().run(qlf_small)
        assert a.truths == b.truths

    def test_respects_iteration_cap(self, qlf_small):
        config = DateConfig(max_iterations=1)
        with pytest.warns(Warning):
            result = DATE(config).run(qlf_small)
        assert result.iterations == 1

    def test_discover_truth_wrapper(self, tiny_dataset):
        result = discover_truth(tiny_dataset)
        assert result.method == "DATE"

    def test_zipf_false_values_supported(self, tiny_dataset):
        config = DateConfig(false_values=ZipfFalseValues(exponent=1.2))
        result = DATE(config).run(tiny_dataset)
        assert set(result.truths) == {"t0", "t1", "t2", "t3"}

    def test_undiscounted_posterior_mode(self, tiny_dataset):
        config = DateConfig(discounted_posterior=False)
        result = DATE(config).run(tiny_dataset)
        assert set(result.truths) == {"t0", "t1", "t2", "t3"}

    def test_task_granularity_mode(self, tiny_dataset):
        config = DateConfig(granularity="task")
        result = DATE(config).run(tiny_dataset)
        assert result.accuracy_matrix.shape == (5, 4)

    def test_precision_against_explicit_reference(self, tiny_dataset):
        result = DATE().run(tiny_dataset)
        reference = {"t0": "A", "t1": "B"}
        precision = result.precision(reference)
        assert precision in (0.0, 0.5, 1.0)

    def test_precision_without_truths_raises(self):
        from repro import Dataset, Task, WorkerProfile

        dataset = Dataset(
            tasks=(Task(task_id="t0"),),
            workers=(WorkerProfile(worker_id="w"),),
            claims={("w", "t0"): "x"},
        )
        result = DATE().run(dataset)
        with pytest.raises(ValueError):
            result.precision()
