"""Unit tests for the array claims encoding and the vectorized kernels.

The property suite (tests/property/test_property_backends.py) pins the
end-to-end backend equivalence; these tests pin the structural
invariants of :class:`ClaimArrays` and the kernel-by-kernel agreement
on a fixed realistic dataset.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import DATE, Dataset, DateConfig, Task, WorkerProfile
from repro.baselines import MajorityVote
from repro.core import DatasetIndex
from repro.core.accuracy import update_accuracy_matrix, value_posteriors
from repro.core.dependence import compute_pairwise_dependence
from repro.core.engine import (
    accuracy_flat,
    dense_accuracy,
    dependence_table,
    independence_flat,
    independence_table,
    pairwise_dependence_arrays,
    plain_posterior_groups,
    posterior_table,
    select_truth_codes,
    support_flat,
)
from repro.core.falsedist import UniformFalseValues
from repro.core.independence import independence_probabilities
from repro.core.support import select_truths, support_counts
from repro.datasets import generate_qatar_living_like
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def dataset():
    return generate_qatar_living_like(
        seed=7, n_tasks=25, n_workers=18, n_copiers=4, target_claims=320
    )


@pytest.fixture(scope="module")
def index(dataset):
    return DatasetIndex(dataset)


@pytest.fixture(scope="module")
def arrays(index):
    return index.arrays


class TestClaimArraysStructure:
    def test_claim_counts(self, dataset, arrays):
        assert arrays.n_claims == len(dataset.claims)
        assert arrays.task_ptr[-1] == arrays.n_claims
        assert arrays.group_ptr[-1] == arrays.n_claims
        assert arrays.worker_ptr[-1] == arrays.n_claims

    def test_claims_match_index(self, index, arrays):
        for c in range(arrays.n_claims):
            i = int(arrays.claim_worker[c])
            j = int(arrays.claim_task[c])
            value = arrays.group_values[int(arrays.claim_group[c])]
            assert index.claims_by_task[j][i] == value

    def test_groups_match_value_groups(self, index, arrays):
        for j in range(index.n_tasks):
            g0, g1 = int(arrays.task_group_ptr[j]), int(arrays.task_group_ptr[j + 1])
            observed = {}
            for g in range(g0, g1):
                c0, c1 = int(arrays.group_ptr[g]), int(arrays.group_ptr[g + 1])
                observed[arrays.group_values[g]] = tuple(
                    int(w) for w in arrays.claim_worker[c0:c1]
                )
            assert observed == index.value_groups[j]
            # Codes follow sorted value order.
            assert list(observed) == sorted(observed)

    def test_worker_csr_roundtrip(self, index, arrays):
        for i in range(index.n_workers):
            s, e = int(arrays.worker_ptr[i]), int(arrays.worker_ptr[i + 1])
            claims = arrays.worker_claims[s:e]
            assert {int(arrays.claim_task[c]) for c in claims} == set(
                index.claims_by_worker[i]
            )

    def test_pair_tables_match_index(self, index, arrays):
        pairs = list(zip(arrays.pair_a.tolist(), arrays.pair_b.tolist()))
        assert pairs == index.pairs
        for k, pair in enumerate(pairs):
            sl = slice(int(arrays.pair_ptr[k]), int(arrays.pair_ptr[k + 1]))
            assert tuple(arrays.ps_task[sl].tolist()) == index.shared_tasks[pair]
            # The claim back-pointers agree with the pair's workers.
            assert set(arrays.claim_worker[arrays.ps_claim_a[sl]]) == {pair[0]}
            assert set(arrays.claim_worker[arrays.ps_claim_b[sl]]) == {pair[1]}

    def test_majority_codes_match_majority_vote(self, index, arrays):
        assert arrays.truth_values(arrays.majority_codes()) == index.majority_vote()

    def test_truth_code_roundtrip(self, index, arrays):
        truths = index.majority_vote()
        codes = arrays.truth_codes(truths)
        assert arrays.truth_values(codes) == truths

    def test_empty_task_has_no_groups(self):
        dataset = Dataset(
            tasks=(Task(task_id="t0"), Task(task_id="t1")),
            workers=(WorkerProfile(worker_id="w0"),),
            claims={("w0", "t0"): "x"},
        )
        arrays = DatasetIndex(dataset).arrays
        assert arrays.n_claims == 1
        assert int(arrays.task_group_ptr[2] - arrays.task_group_ptr[1]) == 0
        assert arrays.truth_values(arrays.majority_codes()) == ["x", None]


class TestKernelAgreement:
    def test_dependence_kernel(self, index, arrays):
        accuracy = index.initial_accuracy_matrix(0.5)
        ref = compute_pairwise_dependence(
            index,
            index.majority_vote(),
            accuracy,
            copy_prob_r=0.4,
            prior_alpha=0.2,
        )
        vec = dependence_table(
            arrays,
            pairwise_dependence_arrays(
                arrays,
                arrays.majority_codes(),
                np.full(arrays.n_claims, 0.5),
                copy_prob_r=0.4,
                prior_alpha=0.2,
                collision=UniformFalseValues().collision_array(index),
            ),
        )
        assert set(ref) == set(vec)
        for pair in ref:
            assert ref[pair].p_a_to_b == pytest.approx(vec[pair].p_a_to_b, abs=1e-12)
            assert ref[pair].p_b_to_a == pytest.approx(vec[pair].p_b_to_a, abs=1e-12)

    def test_independence_kernel(self, index, arrays):
        accuracy = index.initial_accuracy_matrix(0.5)
        dep_ref = compute_pairwise_dependence(
            index, index.majority_vote(), accuracy, copy_prob_r=0.4, prior_alpha=0.2
        )
        dep_vec = pairwise_dependence_arrays(
            arrays,
            arrays.majority_codes(),
            np.full(arrays.n_claims, 0.5),
            copy_prob_r=0.4,
            prior_alpha=0.2,
            collision=UniformFalseValues().collision_array(index),
        )
        for ordering in ("dependent_first", "independent_first"):
            for mode in ("directed", "total"):
                table = independence_probabilities(
                    index,
                    dep_ref,
                    copy_prob_r=0.4,
                    ordering=ordering,
                    discount_mode=mode,
                )
                flat = independence_flat(
                    arrays,
                    dep_vec,
                    copy_prob_r=0.4,
                    ordering=ordering,
                    discount_mode=mode,
                )
                vec_table = independence_table(arrays, flat)
                assert len(vec_table) == len(table)
                for ref_row, vec_row in zip(table, vec_table):
                    assert set(ref_row) == set(vec_row)
                    for value, scores in ref_row.items():
                        assert set(scores) == set(vec_row[value])
                        for worker, score in scores.items():
                            assert vec_row[value][worker] == pytest.approx(
                                score, abs=1e-12
                            )

    def test_posterior_and_support_kernels(self, index, arrays):
        accuracy = index.initial_accuracy_matrix(0.5)
        claim_acc = np.full(arrays.n_claims, 0.5)
        model = UniformFalseValues()

        post_ref = value_posteriors(index, accuracy, false_values=model)
        post_vec = posterior_table(
            arrays, plain_posterior_groups(arrays, claim_acc, false_values=model)
        )
        assert len(post_ref) == len(post_vec)
        for ref_row, vec_row in zip(post_ref, post_vec):
            assert set(ref_row) == set(vec_row)
            for v in ref_row:
                assert ref_row[v] == pytest.approx(vec_row[v], abs=1e-12)

        acc_ref = update_accuracy_matrix(index, post_ref)
        group_post = plain_posterior_groups(arrays, claim_acc, false_values=model)
        acc_vec = dense_accuracy(
            arrays, accuracy_flat(arrays, group_post, granularity="worker")
        )
        np.testing.assert_allclose(acc_ref, acc_vec, atol=1e-12, rtol=0)

        ones = [
            {value: {i: 1.0 for i in group} for value, group in groups.items()}
            for groups in index.value_groups
        ]
        support_ref = support_counts(index, acc_ref, ones)
        group_support = support_flat(
            arrays,
            accuracy_flat(arrays, group_post, granularity="worker"),
            np.ones(arrays.n_claims),
        )
        truths_ref = select_truths(support_ref)
        truths_vec = arrays.truth_values(
            select_truth_codes(arrays, group_support)
        )
        assert truths_ref == truths_vec


class TestBackendConfig:
    def test_invalid_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            DateConfig(backend="gpu")

    def test_backends_share_public_api(self, dataset, index):
        ref = DATE(DateConfig(backend="reference")).run(dataset, index=index)
        vec = DATE(DateConfig(backend="vectorized")).run(dataset, index=index)
        assert ref.truths == vec.truths
        assert ref.method == vec.method == "DATE"
        assert ref.worker_ids == vec.worker_ids
        assert ref.task_ids == vec.task_ids


class TestFalseDistArrays:
    def test_collision_array_matches_scalars_and_caches(self, index):
        model = UniformFalseValues()
        arr = model.collision_array(index)
        expected = [
            model.collision_probability(j, index) for j in range(index.n_tasks)
        ]
        np.testing.assert_allclose(arr, expected)
        # Default implementation caches per (model, index).  Call the
        # base-class method explicitly: UniformFalseValues overrides it
        # with an uncached closed form.
        class Probe(UniformFalseValues):
            candidate_free = False
            calls = 0

            def collision_probability(self, task_index, index):
                Probe.calls += 1
                return super().collision_probability(task_index, index)

        from repro.core.falsedist import FalseValueDistribution

        probe = Probe()
        first = FalseValueDistribution.collision_array(probe, index)
        again = FalseValueDistribution.collision_array(probe, index)
        assert first is again
        assert Probe.calls == index.n_tasks
        np.testing.assert_allclose(first, model.collision_array(index))

    def test_value_probability_array_matches_scalars(self, index):
        model = UniformFalseValues()
        arrays = index.arrays
        arr = model.value_probability_array(index)
        for g in range(arrays.n_groups):
            expected = model.value_probability(
                int(arrays.group_task[g]), index, arrays.group_values[g], None
            )
            assert arr[g] == pytest.approx(expected)


class TestMajorityVoteArrayNative:
    def test_matches_scalar_semantics(self, dataset, index):
        result = MajorityVote().run(dataset, index=index)
        truths = index.majority_vote()
        expected = {
            index.task_ids[j]: v for j, v in enumerate(truths) if v is not None
        }
        assert result.truths == expected
        for j, task_id in enumerate(index.task_ids):
            groups = index.value_groups[j]
            if not groups:
                assert task_id not in result.support
                continue
            counts = {v: float(len(ws)) for v, ws in groups.items()}
            assert result.support[task_id] == counts
        # Agreement-rate accuracies stay within [0, 1].
        assert np.all(result.accuracy_matrix >= 0.0)
        assert np.all(result.accuracy_matrix <= 1.0)
