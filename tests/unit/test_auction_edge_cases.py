"""Edge-case tests for the auction layer beyond the core suites."""

from __future__ import annotations

import numpy as np
import pytest

from repro import ReverseAuction, SOACInstance
from repro.auction.reverse_auction import greedy_cover


def instance_from(accuracy, bids, requirements, costs=None):
    accuracy = np.asarray(accuracy, dtype=float)
    n, m = accuracy.shape
    bids = np.asarray(bids, dtype=float)
    return SOACInstance(
        worker_ids=tuple(f"w{i}" for i in range(n)),
        task_ids=tuple(f"t{j}" for j in range(m)),
        requirements=np.asarray(requirements, dtype=float),
        accuracy=accuracy,
        bids=bids,
        costs=np.asarray(costs, dtype=float) if costs is not None else bids.copy(),
        task_values=np.full(m, 5.0),
    )


class TestZeroRequirements:
    def test_nothing_to_cover_selects_nobody(self):
        instance = instance_from(
            accuracy=[[0.5], [0.7]], bids=[1.0, 2.0], requirements=[0.0]
        )
        outcome = ReverseAuction().run(instance)
        assert outcome.winner_ids == ()
        assert outcome.social_cost == 0.0
        assert outcome.total_payment == 0.0

    def test_mixed_zero_and_positive(self):
        instance = instance_from(
            accuracy=[[0.9, 0.9], [0.0, 0.9]],
            bids=[5.0, 1.0],
            requirements=[0.0, 0.5],
        )
        outcome = ReverseAuction().run(instance)
        # Only t1 needs covering; the cheap specialist w1 suffices.
        assert outcome.winner_ids == ("w1",)


class TestFreeWorkers:
    def test_zero_bid_worker_selected_first(self):
        instance = instance_from(
            accuracy=[[0.5], [0.9]], bids=[0.0, 1.0], requirements=[1.2]
        )
        selection = [w for w, _ in greedy_cover(instance)]
        assert selection[0] == 0  # ratio 0 beats everything

    def test_all_zero_bids(self):
        instance = instance_from(
            accuracy=[[0.8], [0.8]], bids=[0.0, 0.0], requirements=[1.0]
        )
        outcome = ReverseAuction().run(instance)
        assert outcome.social_cost == 0.0


class TestTieBreaking:
    def test_equal_ratio_prefers_lower_index(self):
        instance = instance_from(
            accuracy=[[0.5], [0.5]], bids=[1.0, 1.0], requirements=[0.5]
        )
        selection = [w for w, _ in greedy_cover(instance)]
        assert selection == [0]

    def test_deterministic_across_runs(self, soac_medium):
        a = ReverseAuction().run(soac_medium)
        b = ReverseAuction().run(soac_medium)
        assert a.winner_ids == b.winner_ids
        assert a.payments == b.payments


class TestRequirementSaturation:
    def test_exact_cover_boundary(self):
        """A worker whose accuracy exactly equals the requirement covers it."""
        instance = instance_from(
            accuracy=[[0.7]], bids=[1.0], requirements=[0.7]
        )
        outcome = ReverseAuction().run(instance)
        assert outcome.winner_ids == ("w0",)

    def test_tiny_residual_not_double_counted(self):
        """Floating-point residue below the tolerance ends the loop."""
        instance = instance_from(
            accuracy=[[0.1], [0.2]],
            bids=[1.0, 1.0],
            requirements=[0.3],
        )
        outcome = ReverseAuction().run(instance)
        assert set(outcome.winner_ids) == {"w0", "w1"}


class TestPaymentStructure:
    def test_payment_independent_of_own_bid(self):
        """A winner's payment is computed over W\\{i} and therefore
        cannot depend on its own declared bid (the heart of
        truthfulness)."""
        instance = instance_from(
            accuracy=[[0.9], [0.8], [0.7]],
            bids=[1.0, 2.0, 3.0],
            requirements=[0.9],
        )
        base = ReverseAuction().run(instance)
        assert base.winner_ids == ("w0",)
        p_base = base.payments["w0"]
        for bid in (0.5, 1.4):
            shifted = ReverseAuction().run(instance.with_bid(0, bid))
            if "w0" in shifted.payments:
                assert shifted.payments["w0"] == pytest.approx(p_base)

    def test_multi_winner_payments_all_critical(self):
        """With two winners needed, each is paid relative to the
        replacement that would have taken its slot."""
        instance = instance_from(
            accuracy=[[0.6], [0.6], [0.6]],
            bids=[1.0, 2.0, 5.0],
            requirements=[1.0],
        )
        outcome = ReverseAuction().run(instance)
        assert set(outcome.winner_ids) == {"w0", "w1"}
        # w2 (bid 5) is the replacement for either winner.
        assert outcome.payments["w0"] == pytest.approx(5.0)
        assert outcome.payments["w1"] == pytest.approx(5.0)


class TestCapInteraction:
    def test_capped_instance_always_feasible(self, soac_medium):
        bumped = SOACInstance(
            worker_ids=soac_medium.worker_ids,
            task_ids=soac_medium.task_ids,
            requirements=soac_medium.requirements * 100.0,
            accuracy=soac_medium.accuracy,
            bids=soac_medium.bids,
            costs=soac_medium.costs,
            task_values=soac_medium.task_values,
        )
        capped = bumped.with_capped_requirements(0.8)
        assert capped.is_feasible
        outcome = ReverseAuction().run(capped)
        assert capped.is_covering(outcome.winner_indexes)
