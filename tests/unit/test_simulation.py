"""Unit tests for the simulation harness (repro.simulation)."""

from __future__ import annotations

import time

import pytest

from repro import (
    DATE,
    ConfigurationError,
    ExperimentConfig,
    MajorityVote,
    MetricMismatchError,
)
from repro.simulation import (
    InstanceTable,
    SummaryStats,
    Timer,
    auction_report,
    copier_detection_report,
    precision,
    run_instances,
    summarize,
    sweep_series,
    timed,
)


class TestStats:
    def test_single_value(self):
        stats = summarize([2.0])
        assert stats.mean == 2.0
        assert stats.std == 0.0
        assert stats.ci95_low == stats.ci95_high == 2.0

    def test_known_sample(self):
        stats = summarize([1.0, 2.0, 3.0, 4.0])
        assert stats.mean == pytest.approx(2.5)
        assert stats.minimum == 1.0
        assert stats.maximum == 4.0
        assert stats.ci95_low < stats.mean < stats.ci95_high

    def test_constant_sample_zero_width_ci(self):
        stats = summarize([5.0, 5.0, 5.0])
        assert stats.ci95_halfwidth == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_str_format(self):
        assert "n=3" in str(summarize([1.0, 2.0, 3.0]))


class TestRunner:
    def test_collects_rows(self):
        table = run_instances(3, lambda k: {"x": float(k)})
        assert table.n_instances == 3
        assert table.column("x") == [0.0, 1.0, 2.0]
        assert table.mean("x") == pytest.approx(1.0)

    def test_summary(self):
        table = run_instances(4, lambda k: {"a": 1.0, "b": float(k)})
        summary = table.summary()
        assert set(summary) == {"a", "b"}
        assert isinstance(summary["a"], SummaryStats)

    def test_missing_metric_raises_with_hint(self):
        table = InstanceTable(rows=({"a": 1.0, "b": 2.0}, {"a": 3.0, "b": 4.0}))
        with pytest.raises(KeyError, match="'c'"):
            table.column("c")

    def test_ragged_rows_raise_naming_instance_and_metric(self):
        # A ragged table is a shape bug in the metric function; the
        # names property must name the offender instead of silently
        # intersecting columns away.
        table = InstanceTable(rows=({"a": 1.0, "b": 2.0}, {"a": 3.0}, {"a": 5.0}))
        with pytest.raises(MetricMismatchError, match=r"instance 1.*missing \['b'\]"):
            table.metric_names
        extra = InstanceTable(rows=({"a": 1.0}, {"a": 2.0, "zz": 3.0}))
        with pytest.raises(MetricMismatchError, match=r"unexpected \['zz'\]"):
            extra.summary()

    def test_empty_metrics_rejected(self):
        with pytest.raises(ValueError):
            run_instances(1, lambda k: {})

    def test_zero_instances_rejected(self):
        with pytest.raises(ValueError):
            run_instances(0, lambda k: {"x": 1.0})


class TestSweep:
    def test_series_assembled(self):
        result = sweep_series(
            "demo",
            "demo sweep",
            "x",
            "y",
            [1.0, 2.0, 3.0],
            lambda x: {"double": 2 * x, "square": x * x},
        )
        assert result.y("double") == (2.0, 4.0, 6.0)
        assert result.y("square") == (1.0, 4.0, 9.0)
        assert result.rows()[1] == (2.0, 4.0, 4.0)

    def test_inconsistent_series_rejected(self):
        def point(x):
            return {"a": x} if x < 2 else {"b": x}

        with pytest.raises(ValueError):
            sweep_series("demo", "t", "x", "y", [1.0, 2.0], point)

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError):
            sweep_series("demo", "t", "x", "y", [], lambda x: {"a": x})

    def test_result_length_validation(self):
        from repro.simulation.sweep import ExperimentResult

        with pytest.raises(ValueError):
            ExperimentResult(
                experiment_id="bad",
                title="",
                x_label="x",
                y_label="y",
                x_values=(1.0, 2.0),
                series={"s": (1.0,)},
            )


class TestTiming:
    def test_timer_context(self):
        with Timer() as t:
            time.sleep(0.01)
        assert t.seconds >= 0.005

    def test_timed_wrapper(self):
        value, seconds = timed(lambda a, b: a + b, 2, b=3)
        assert value == 5
        assert seconds >= 0.0


class TestMetrics:
    def test_precision(self, tiny_dataset):
        result = MajorityVote().run(tiny_dataset)
        assert 0.0 <= precision(result, tiny_dataset) <= 1.0

    def test_copier_detection_report(self, qlf_small):
        result = DATE().run(qlf_small)
        report = copier_detection_report(result, qlf_small)
        assert report.copier_pairs > 0
        assert report.independent_pairs > 0
        # DATE should separate true copier pairs from independent ones.
        assert report.separation > 0.0

    def test_auction_report(self, qlf_small):
        from repro import IMC2

        outcome = IMC2().run(qlf_small)
        report = auction_report(outcome.instance, outcome.auction)
        assert report.covered
        assert report.n_winners == len(outcome.winners)
        assert report.overpayment_ratio >= 1.0


class TestExperimentConfig:
    def test_defaults(self):
        config = ExperimentConfig()
        assert config.n_tasks == 300
        assert config.n_workers == 120
        assert config.n_copiers == 30

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(n_copiers=120, n_workers=120)
        with pytest.raises(ConfigurationError):
            ExperimentConfig(instances=0)
        with pytest.raises(ConfigurationError):
            ExperimentConfig(copy_prob=1.5)

    def test_dataset_for_is_deterministic(self):
        config = ExperimentConfig(
            n_tasks=20, n_workers=10, n_copiers=2, target_claims=100, instances=2
        )
        assert config.dataset_for(0).claims == config.dataset_for(0).claims
        assert config.dataset_for(0).claims != config.dataset_for(1).claims

    def test_instance_seed_stability(self):
        a = ExperimentConfig(
            n_tasks=20, n_workers=10, n_copiers=2, target_claims=100, instances=2
        )
        b = a.evolve(instances=5)
        assert a.instance_seed(0) == b.instance_seed(0)

    def test_instance_index_bounds(self):
        config = ExperimentConfig(
            n_tasks=20, n_workers=10, n_copiers=2, target_claims=100, instances=2
        )
        with pytest.raises(ConfigurationError):
            config.dataset_for(2)

    def test_world_config_resolution(self):
        config = ExperimentConfig(n_tasks=33, n_workers=11, n_copiers=1)
        world = config.world_config
        assert world.n_tasks == 33
        assert world.n_workers == 11

    def test_datasets_length(self):
        config = ExperimentConfig(
            n_tasks=10, n_workers=6, n_copiers=1, target_claims=40, instances=3
        )
        assert len(config.datasets()) == 3
