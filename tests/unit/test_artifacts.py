"""Unit tests for the artifacts layer (fingerprints + run ledger)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.artifacts import (
    FingerprintError,
    LedgerError,
    RunKey,
    RunLedger,
    cached_result,
    canonical,
    canonical_json,
    default_store_path,
    fingerprint,
)
from repro.core.config import DateConfig
from repro.core.falsedist import (
    EmpiricalFalseValues,
    UniformFalseValues,
    ZipfFalseValues,
)
from repro.errors import ConfigurationError
from repro.simulation.config import ExperimentConfig
from repro.simulation.sweep import ExperimentResult


class TestCanonical:
    def test_scalars_pass_through(self):
        assert canonical(None) is None
        assert canonical(True) is True
        assert canonical(3) == 3
        assert canonical(0.25) == 0.25
        assert canonical("x") == "x"

    def test_numpy_scalars_lower(self):
        assert canonical(np.int64(7)) == 7
        assert canonical(np.float64(0.5)) == 0.5
        assert canonical(np.bool_(True)) is True
        assert canonical(np.array([1.0, 2.0])) == [1.0, 2.0]

    def test_dataclass_includes_class_name(self):
        encoded = canonical(DateConfig())
        assert encoded["__dataclass__"].endswith("DateConfig")
        assert encoded["fields"]["copy_prob_r"] == 0.4

    def test_tuple_and_list_alias(self):
        assert canonical((1, 2)) == canonical([1, 2])

    def test_structured_dict_keys(self):
        claims = {("w2", "t1"): "b", ("w1", "t1"): "a"}
        encoded = canonical(claims)
        assert encoded == {"__pairs__": [[["w1", "t1"], "a"], [["w2", "t1"], "b"]]}

    def test_set_is_order_independent(self):
        assert canonical({3, 1, 2}) == canonical({2, 3, 1})

    def test_callable_by_qualified_name(self):
        encoded = canonical(len)
        assert encoded == {"__callable__": "builtins.len"}

    def test_fingerprint_hook_objects(self):
        assert canonical(UniformFalseValues())["state"] == {}
        assert canonical(ZipfFalseValues(1.5))["state"] == {"exponent": 1.5}
        assert canonical(EmpiricalFalseValues(2.0))["state"] == {"smoothing": 2.0}
        # Two distributions with identical state must not collide.
        assert canonical(UniformFalseValues()) != canonical(ZipfFalseValues())

    def test_unknown_object_rejected(self):
        class Opaque:
            __call__ = None  # not callable, no hook

        with pytest.raises(FingerprintError):
            canonical(Opaque())

    def test_canonical_json_sorted_and_compact(self):
        text = canonical_json({"b": 1, "a": 2})
        assert text == '{"a":2,"b":1}'


class TestFingerprint:
    def test_stable_across_key_order(self):
        assert fingerprint({"a": 1, "b": 2}) == fingerprint({"b": 2, "a": 1})

    def test_sensitive_to_values(self):
        assert fingerprint({"seed": 1}) != fingerprint({"seed": 2})

    def test_sensitive_to_config_changes(self):
        base = ExperimentConfig(n_tasks=10, n_workers=5, n_copiers=1, target_claims=30)
        changed = base.evolve(date=base.date.evolve(copy_prob_r=0.7))
        assert fingerprint(base) != fingerprint(changed)

    def test_schema_salt_in_digest(self, monkeypatch):
        # Import the module explicitly: the package re-exports the
        # `fingerprint` *function* under the same dotted name.
        import importlib

        fingerprint_module = importlib.import_module(
            "repro.artifacts.fingerprint"
        )
        before = fingerprint({"x": 1})
        monkeypatch.setattr(fingerprint_module, "SCHEMA_VERSION", 999)
        assert fingerprint({"x": 1}) != before


@pytest.fixture
def ledger(tmp_path) -> RunLedger:
    return RunLedger(tmp_path / "store")


@pytest.fixture
def key() -> RunKey:
    return RunKey("demo", {"seed": 42, "grid": (0.1, 0.2)})


class TestRunLedger:
    def test_default_store_path_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "env-store"))
        assert default_store_path() == tmp_path / "env-store"
        assert RunLedger().root == tmp_path / "env-store"

    def test_empty_key_rejected(self):
        with pytest.raises(ConfigurationError):
            RunKey("", {})

    def test_row_round_trip_exact_floats(self, ledger, key):
        row = {"precision": 0.1 + 0.2, "tiny": 5e-324}
        assert ledger.get_row(key, 0) is None
        ledger.put_row(key, 0, row)
        back = ledger.get_row(key, 0)
        assert back == row
        assert all(back[k] == v for k, v in row.items())

    def test_numpy_metric_values_serialize(self, ledger, key):
        # MetricFn may legally return numpy scalars; the cache path
        # must accept them like the plain path does.
        ledger.put_row(key, 0, {"m": np.float64(0.9)})
        assert ledger.get_row(key, 0) == {"m": 0.9}
        ledger.put_point(key, 0.1, {"s": np.float64(0.5)})
        assert ledger.get_point(key, 0.1) == {"s": 0.5}

    def test_rows_keyed_by_instance(self, ledger, key):
        ledger.put_row(key, 0, {"m": 1.0})
        assert ledger.get_row(key, 1) is None

    def test_rows_keyed_by_payload(self, ledger, key):
        ledger.put_row(key, 0, {"m": 1.0})
        other = RunKey("demo", {"seed": 43, "grid": (0.1, 0.2)})
        assert ledger.get_row(other, 0) is None

    def test_point_round_trip(self, ledger, key):
        ledger.put_point(key, 0.3, {"DATE": 0.9})
        assert ledger.get_point(key, 0.3) == {"DATE": 0.9}
        assert ledger.get_point(key, 0.4) is None

    def test_result_round_trip(self, ledger, key):
        result = ExperimentResult(
            experiment_id="demo",
            title="t",
            x_label="x",
            y_label="y",
            x_values=(1.0, 2.0),
            series={"s": (0.5, 0.25)},
            meta={"instances": 2},
        )
        assert ledger.get_result(key) is None
        ledger.put_result(key, result)
        assert ledger.get_result(key) == result

    def test_stats_count_hits_misses_writes(self, ledger, key):
        ledger.get_row(key, 0)
        ledger.put_row(key, 0, {"m": 1.0})
        ledger.get_row(key, 0)
        stats = ledger.stats
        assert (stats.hits, stats.misses, stats.writes) == (1, 1, 1)
        assert stats.hit_rate == 0.5
        ledger.reset_stats()
        assert ledger.stats.lookups == 0

    def test_torn_entry_is_a_miss(self, ledger, key):
        ledger.put_row(key, 0, {"m": 1.0})
        path = ledger._path("rows", ledger.row_fingerprint(key, 0))
        path.write_text("{not json")
        assert ledger.get_row(key, 0) is None

    def test_stale_schema_is_a_miss(self, ledger, key):
        ledger.put_row(key, 0, {"m": 1.0})
        path = ledger._path("rows", ledger.row_fingerprint(key, 0))
        payload = json.loads(path.read_text())
        payload["schema"] = -1
        path.write_text(json.dumps(payload))
        assert ledger.get_row(key, 0) is None

    def test_entries_and_describe(self, ledger, key):
        ledger.put_row(key, 0, {"m": 1.0})
        ledger.put_point(key, 0.5, {"s": 2.0})
        entries = ledger.entries()
        assert {e.kind for e in entries} == {"rows", "points"}
        assert all(e.experiment_id == "demo" for e in entries)
        assert ledger.describe()["per_kind"]["rows"] == 1
        assert ledger.entries("rows")[0].detail == "instance 0"

    def test_show_by_prefix(self, ledger, key):
        fp = ledger.put_row(key, 0, {"m": 1.0})
        payload = ledger.show(fp[:10])
        assert payload["fingerprint"] == fp
        assert payload["body"] == {"m": 1.0}
        with pytest.raises(LedgerError):
            ledger.show("ffffffffff")
        with pytest.raises(LedgerError):
            ledger.show("")

    def test_show_ambiguous_prefix(self, ledger, key):
        ledger.put_row(key, 0, {"m": 1.0})
        ledger.put_row(key, 1, {"m": 2.0})
        fingerprints = sorted(e.fingerprint for e in ledger.entries())
        shared = ""
        for ca, cb in zip(*fingerprints):
            if ca != cb:
                break
            shared += ca
        if shared:  # two hashes rarely share a prefix; only then test it
            with pytest.raises(LedgerError, match="ambiguous"):
                ledger.show(shared)

    def test_gc_all_and_by_age(self, ledger, key):
        ledger.put_row(key, 0, {"m": 1.0})
        ledger.put_row(key, 1, {"m": 2.0})
        removed, freed = ledger.gc(older_than_days=1.0)
        assert removed == 0 and freed == 0  # everything is fresh
        removed, freed = ledger.gc()
        assert removed == 2 and freed > 0
        assert ledger.entries() == []

    def test_gc_sweeps_orphaned_temp_files(self, ledger, key):
        ledger.put_row(key, 0, {"m": 1.0})
        shard = ledger._path("rows", ledger.row_fingerprint(key, 0)).parent
        orphan = shard / ".deadbeef-orphan.tmp"
        orphan.write_text("torn write")
        removed, freed = ledger.gc()
        assert removed == 2 and freed > 0
        assert not orphan.exists()
        assert not shard.exists()  # emptied shard pruned

    def test_result_meta_order_survives_round_trip(self, ledger, key):
        # Terminal rendering of a warm run must match the cold run, so
        # meta insertion order (and nested dict order) is part of the
        # stored value.
        result = ExperimentResult(
            experiment_id="demo",
            title="t",
            x_label="x",
            y_label="y",
            x_values=(1.0,),
            series={"s": (2.0,)},
            meta={"zeta": 1, "alpha": {"z": 1, "a": 2}, "mid": 3},
        )
        ledger.put_result(key, result)
        replayed = ledger.get_result(key)
        assert list(replayed.meta) == ["zeta", "alpha", "mid"]
        assert list(replayed.meta["alpha"]) == ["z", "a"]

    def test_gc_by_kind(self, ledger, key):
        ledger.put_row(key, 0, {"m": 1.0})
        ledger.put_point(key, 0.5, {"s": 2.0})
        removed, _ = ledger.gc(kind="points")
        assert removed == 1
        assert [e.kind for e in ledger.entries()] == ["rows"]

    def test_snapshot_round_trip(self, ledger):
        body = {"truths": {"t1": "a"}, "value": 0.1 + 0.2}
        snapshot_key = {"config": DateConfig(), "claims": {("w", "t"): "a"}}
        assert ledger.get_snapshot(snapshot_key) is None
        ledger.put_snapshot(snapshot_key, body)
        assert ledger.get_snapshot(snapshot_key) == body


class TestCachedResult:
    def _result(self) -> ExperimentResult:
        return ExperimentResult(
            experiment_id="demo",
            title="t",
            x_label="x",
            y_label="y",
            x_values=(1.0,),
            series={"s": (2.0,)},
        )

    def test_without_ledger_just_builds(self):
        calls = []

        def build():
            calls.append(1)
            return self._result()

        assert cached_result(None, None, build) == self._result()
        assert calls == [1]

    def test_hit_short_circuits_build(self, ledger, key):
        calls = []

        def build():
            calls.append(1)
            return self._result()

        first = cached_result(ledger, key, build)
        second = cached_result(ledger, key, build)
        assert first == second
        assert calls == [1]
