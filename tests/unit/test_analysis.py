"""Unit tests for the analysis extensions (repro.analysis)."""

from __future__ import annotations

import networkx as nx
import pytest

from repro import DATE, DateConfig
from repro.analysis import (
    copier_clusters,
    dependence_graph,
    detection_scores,
    likely_sources,
    run_date_ablation,
)
from repro.errors import ConfigurationError
from repro.simulation.config import ExperimentConfig


@pytest.fixture(scope="module")
def tiny_result():
    """DATE result on the copier-laden tiny dataset (module-scoped)."""
    from repro import Dataset, Task, WorkerProfile

    tasks = tuple(
        Task(task_id=f"t{j}", domain=("A", "B", "C"), truth="A") for j in range(4)
    )
    workers = (
        WorkerProfile(worker_id="w1", reliability=0.9),
        WorkerProfile(worker_id="w2", reliability=0.9),
        WorkerProfile(worker_id="w3", reliability=0.5),
        WorkerProfile(
            worker_id="w4",
            reliability=0.5,
            is_copier=True,
            sources=("w3",),
            copy_prob=1.0,
        ),
        WorkerProfile(worker_id="w5", reliability=0.8),
    )
    claims = {
        ("w1", "t0"): "A", ("w1", "t1"): "A", ("w1", "t2"): "A", ("w1", "t3"): "A",
        ("w2", "t0"): "A", ("w2", "t1"): "A", ("w2", "t2"): "A", ("w2", "t3"): "A",
        ("w3", "t0"): "A", ("w3", "t1"): "B", ("w3", "t2"): "B", ("w3", "t3"): "B",
        ("w4", "t0"): "A", ("w4", "t1"): "B", ("w4", "t2"): "B", ("w4", "t3"): "B",
        ("w5", "t0"): "A", ("w5", "t1"): "A",
    }
    dataset = Dataset(tasks=tasks, workers=workers, claims=claims)
    result = DATE(DateConfig(copy_prob_r=0.8, prior_alpha=0.3)).run(dataset)
    return dataset, result


class TestDependenceGraph:
    def test_nodes_cover_all_workers(self, tiny_result):
        _, result = tiny_result
        graph = dependence_graph(result, threshold=0.3)
        assert set(graph.nodes) == set(result.worker_ids)

    def test_edges_carry_probabilities(self, tiny_result):
        _, result = tiny_result
        graph = dependence_graph(result, threshold=0.3)
        for _, _, data in graph.edges(data=True):
            assert 0.3 <= data["probability"] <= 1.0

    def test_copier_pair_linked(self, tiny_result):
        _, result = tiny_result
        graph = dependence_graph(result, threshold=0.3)
        assert graph.has_edge("w3", "w4") or graph.has_edge("w4", "w3")

    def test_threshold_one_keeps_little(self, tiny_result):
        _, result = tiny_result
        graph = dependence_graph(result, threshold=1.0)
        assert graph.number_of_edges() == 0

    def test_threshold_validated(self, tiny_result):
        _, result = tiny_result
        with pytest.raises(ConfigurationError):
            dependence_graph(result, threshold=0.0)

    def test_is_networkx_digraph(self, tiny_result):
        _, result = tiny_result
        assert isinstance(dependence_graph(result), nx.DiGraph)


class TestCopierClusters:
    def test_copier_cluster_found(self, tiny_result):
        _, result = tiny_result
        clusters = copier_clusters(result, threshold=0.3)
        assert any({"w3", "w4"} <= cluster for cluster in clusters)

    def test_min_size_filter(self, tiny_result):
        _, result = tiny_result
        clusters = copier_clusters(result, threshold=0.3, min_size=10)
        assert clusters == []

    def test_sorted_largest_first(self, tiny_result):
        _, result = tiny_result
        clusters = copier_clusters(result, threshold=0.2)
        sizes = [len(c) for c in clusters]
        assert sizes == sorted(sizes, reverse=True)


class TestLikelySources:
    def test_ranked_descending(self, tiny_result):
        _, result = tiny_result
        ranked = likely_sources(result, threshold=0.2)
        scores = [s for _, s in ranked]
        assert scores == sorted(scores, reverse=True)

    def test_top_limits_output(self, tiny_result):
        _, result = tiny_result
        assert len(likely_sources(result, threshold=0.2, top=1)) <= 1


class TestDetectionScores:
    def test_scores_on_tiny(self, tiny_result):
        dataset, result = tiny_result
        scores = detection_scores(result, dataset, threshold=0.3)
        assert scores.true_copiers == 1
        assert scores.detected_copiers == 1
        assert scores.recall == 1.0
        assert 0.0 <= scores.precision <= 1.0
        assert scores.pair_recall == 1.0

    def test_qlf_detection_reasonable(self, qlf_small):
        result = DATE().run(qlf_small)
        scores = detection_scores(result, qlf_small, threshold=0.5)
        assert scores.recall >= 0.5
        assert scores.pair_recall >= 0.3


class TestAblation:
    def test_runs_all_variants(self):
        config = ExperimentConfig(
            n_tasks=30, n_workers=18, n_copiers=4, target_claims=360, instances=2
        )
        rows = run_date_ablation(config)
        names = [row.variant for row in rows]
        assert "default" in names
        assert "paper-literal" in names
        for row in rows:
            assert 0.0 <= row.precision.mean <= 1.0
            assert row.precision.n == 2

    def test_custom_variants(self):
        config = ExperimentConfig(
            n_tasks=20, n_workers=12, n_copiers=2, target_claims=160, instances=1
        )
        rows = run_date_ablation(
            config, variants={"only": {"copy_prob_r": 0.6}}
        )
        assert len(rows) == 1
        assert rows[0].overrides == {"copy_prob_r": 0.6}
