"""Retrying client: backoff schedule, Retry-After, exactly-once seqs.

The transport is faked by monkeypatching ``urllib.request.urlopen``
with scripted responses, so every retry decision the client makes is
pinned without a live server; the sleep function is injected to record
the schedule instead of waiting it out.
"""

from __future__ import annotations

import io
import json
import urllib.error
import urllib.request

import pytest

from repro.streaming.client import (
    ClientError,
    ServerUnavailableError,
    StreamingClient,
)
from repro.streaming.ingest import ClaimBatch
from repro.types import Task, WorkerProfile


class _FakeResponse:
    def __init__(self, body: dict):
        self._body = json.dumps(body).encode()

    def read(self) -> bytes:
        return self._body

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


def _http_error(status: int, body: dict | None = None, headers: dict | None = None):
    import email.message

    msg = email.message.Message()
    for name, value in (headers or {}).items():
        msg[name] = value
    return urllib.error.HTTPError(
        "http://x", status, "err", msg,
        io.BytesIO(json.dumps(body or {}).encode()),
    )


class _Transport:
    """Scripted urlopen: pops the next canned outcome per call."""

    def __init__(self, outcomes):
        self.outcomes = list(outcomes)
        self.requests = []

    def __call__(self, request, timeout=None):
        self.requests.append((request, timeout))
        outcome = self.outcomes.pop(0)
        if isinstance(outcome, Exception):
            raise outcome
        return _FakeResponse(outcome)


@pytest.fixture
def sleeps():
    return []


def _client(monkeypatch, transport, sleeps, **kwargs):
    monkeypatch.setattr(urllib.request, "urlopen", transport)
    kwargs.setdefault("retries", 3)
    kwargs.setdefault("backoff", 0.1)
    kwargs.setdefault("jitter", 0.0)
    return StreamingClient(
        "http://127.0.0.1:1/", sleep=sleeps.append, **kwargs
    )


class TestRetrying:
    def test_connection_errors_are_retried_until_success(
        self, monkeypatch, sleeps
    ):
        transport = _Transport([
            urllib.error.URLError("refused"),
            urllib.error.URLError("refused"),
            {"ok": True},
        ])
        client = _client(monkeypatch, transport, sleeps)
        assert client.request("GET", "/healthz") == {"ok": True}
        assert len(sleeps) == 2

    def test_backoff_doubles_and_caps(self, monkeypatch, sleeps):
        transport = _Transport([urllib.error.URLError("x")] * 4)
        client = _client(
            monkeypatch, transport, sleeps, retries=3, backoff=1.0, max_backoff=2.5
        )
        with pytest.raises(ServerUnavailableError):
            client.request("GET", "/healthz")
        assert sleeps == [1.0, 2.0, 2.5]

    def test_503_honors_a_longer_retry_after(self, monkeypatch, sleeps):
        transport = _Transport([
            _http_error(503, {"error": "recovering"}, {"Retry-After": "3"}),
            {"ok": True},
        ])
        client = _client(monkeypatch, transport, sleeps)
        assert client.request("GET", "/x") == {"ok": True}
        assert sleeps == [3.0]

    def test_4xx_is_not_retried(self, monkeypatch, sleeps):
        transport = _Transport([_http_error(404, {"error": "unknown campaign"})])
        client = _client(monkeypatch, transport, sleeps)
        with pytest.raises(ClientError) as exc_info:
            client.request("GET", "/campaigns/nope")
        assert exc_info.value.status == 404
        assert "unknown campaign" in str(exc_info.value)
        assert sleeps == []

    def test_exhausted_retries_raise_with_last_error(self, monkeypatch, sleeps):
        transport = _Transport([_http_error(503, {"error": "disk"})] * 4)
        client = _client(monkeypatch, transport, sleeps)
        with pytest.raises(ServerUnavailableError, match="HTTP 503"):
            client.request("POST", "/campaigns/c/claims", {})
        assert len(transport.requests) == 4  # 1 try + 3 retries

    def test_jitter_stretches_but_never_shortens(self, monkeypatch, sleeps):
        transport = _Transport([urllib.error.URLError("x"), {"ok": True}])
        client = _client(
            monkeypatch, transport, sleeps, backoff=1.0, jitter=0.5, seed=3
        )
        client.request("GET", "/x")
        assert 1.0 <= sleeps[0] <= 1.5

    def test_timeout_is_passed_to_the_transport(self, monkeypatch, sleeps):
        transport = _Transport([{"ok": True}])
        client = _client(monkeypatch, transport, sleeps, timeout=7.5)
        client.request("GET", "/x")
        assert transport.requests[0][1] == 7.5


def _batch(i):
    return ClaimBatch(
        claims={(f"w{i}", f"t{i}"): "a"},
        tasks=(Task(task_id=f"t{i}", domain=("a", "b")),),
        workers=(WorkerProfile(worker_id=f"w{i}"),),
    )


class TestExactlyOnceSequencing:
    def test_seq_is_assigned_before_first_attempt_and_reused(
        self, monkeypatch, sleeps
    ):
        # First attempt dies *after* the server journaled it (ack lost);
        # the retry must carry the SAME seq so the server deduplicates.
        transport = _Transport([
            {"batch": 1},                       # create
            urllib.error.URLError("ack lost"),  # ingest attempt 1
            {"duplicate": True, "seq": 1},      # ingest attempt 2 (retry)
        ])
        client = _client(monkeypatch, transport, sleeps)
        client.create_campaign("c")
        reply = client.ingest("c", _batch(0))
        assert reply == {"duplicate": True, "seq": 1}
        sent = [
            json.loads(req.data)
            for req, _ in transport.requests[1:]
        ]
        assert [body["seq"] for body in sent] == [1, 1]

    def test_seq_advances_per_acknowledged_batch(self, monkeypatch, sleeps):
        transport = _Transport([{"batch": 1}, {"batch": 1}, {"batch": 2}])
        client = _client(monkeypatch, transport, sleeps)
        client.create_campaign("c")
        client.ingest("c", _batch(0))
        client.ingest("c", _batch(1))
        sent = [json.loads(req.data) for req, _ in transport.requests[1:]]
        assert [body["seq"] for body in sent] == [1, 2]

    def test_seqs_are_tracked_per_campaign(self, monkeypatch, sleeps):
        transport = _Transport([{}, {}, {}, {}])
        client = _client(monkeypatch, transport, sleeps)
        client.create_campaign("a")
        client.create_campaign("b")
        client.ingest("a", _batch(0))
        client.ingest("b", _batch(1))
        sent = [json.loads(req.data) for req, _ in transport.requests[2:]]
        assert [body["seq"] for body in sent] == [1, 1]

    def test_restarted_client_resumes_from_server_watermark(
        self, monkeypatch, sleeps
    ):
        # No create_campaign call: this client has no counter for "c"
        # (a restarted process resuming an existing stream).  It must
        # fetch the campaign summary and continue at applied_seq + 1 —
        # defaulting to 1 would be acknowledged as a duplicate and
        # silently dropped.
        transport = _Transport([
            {"campaign_id": "c", "applied_seq": 4},  # GET /campaigns/c
            {"batch": 5},                            # ingest seq 5
            {"batch": 6},                            # ingest seq 6
        ])
        client = _client(monkeypatch, transport, sleeps)
        client.ingest("c", _batch(0))
        client.ingest("c", _batch(1))
        first = transport.requests[0][0]
        assert first.get_method() == "GET"
        assert first.full_url.endswith("/campaigns/c")
        sent = [json.loads(req.data) for req, _ in transport.requests[1:]]
        assert [body["seq"] for body in sent] == [5, 6]

    def test_campaign_ids_are_percent_encoded(self, monkeypatch, sleeps):
        transport = _Transport([{}])
        client = _client(monkeypatch, transport, sleeps)
        client.ingest("a/b c", _batch(0), seq=1)
        url = transport.requests[0][0].full_url
        assert "/campaigns/a%2Fb%20c/claims" in url


class TestWaitReady:
    def test_waits_through_recovering_state(self, monkeypatch, sleeps):
        transport = _Transport([
            urllib.error.URLError("refused"),
            {"status": "recovering", "recovering": True},
            {"status": "ok", "recovering": False},
        ])
        client = _client(monkeypatch, transport, sleeps, retries=0)
        health = client.wait_ready(deadline=30.0)
        assert health["status"] == "ok"

    def test_deadline_raises(self, monkeypatch, sleeps):
        transport = _Transport(
            [{"status": "recovering", "recovering": True}] * 50
        )
        client = _client(monkeypatch, transport, sleeps, retries=0)
        import itertools

        clock = itertools.count(step=0.5)
        monkeypatch.setattr(
            "repro.streaming.client.time.monotonic", lambda: next(clock)
        )
        with pytest.raises(ServerUnavailableError, match="not ready"):
            client.wait_ready(deadline=3.0)
