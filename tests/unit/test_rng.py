"""Unit tests for the deterministic RNG helpers (repro.rng)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.rng import ensure_generator, instance_seeds, iter_instance_rngs, spawn


class TestEnsureGenerator:
    def test_none_is_deterministic(self):
        a = ensure_generator(None).random(4)
        b = ensure_generator(None).random(4)
        assert np.array_equal(a, b)

    def test_int_seed_deterministic(self):
        assert np.array_equal(
            ensure_generator(123).random(4), ensure_generator(123).random(4)
        )

    def test_different_seeds_differ(self):
        assert not np.array_equal(
            ensure_generator(1).random(4), ensure_generator(2).random(4)
        )

    def test_generator_passthrough(self):
        rng = np.random.default_rng(0)
        assert ensure_generator(rng) is rng

    def test_numpy_integer_accepted(self):
        rng = ensure_generator(np.int64(5))
        assert isinstance(rng, np.random.Generator)

    def test_invalid_type_rejected(self):
        with pytest.raises(TypeError):
            ensure_generator("seed")  # type: ignore[arg-type]


class TestSpawn:
    def test_children_are_independent_and_deterministic(self):
        children_a = spawn(ensure_generator(7), 3)
        children_b = spawn(ensure_generator(7), 3)
        for a, b in zip(children_a, children_b):
            assert np.array_equal(a.random(4), b.random(4))

    def test_children_differ_from_each_other(self):
        a, b = spawn(ensure_generator(7), 2)
        assert not np.array_equal(a.random(4), b.random(4))

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn(ensure_generator(0), -1)

    def test_zero_count(self):
        assert spawn(ensure_generator(0), 0) == []


class TestInstanceSeeds:
    def test_deterministic(self):
        assert instance_seeds(42, 5) == instance_seeds(42, 5)

    def test_distinct(self):
        seeds = instance_seeds(42, 10)
        assert len(set(seeds)) == 10

    def test_prefix_stability(self):
        # Instance k's seed must not depend on how many instances run.
        assert instance_seeds(42, 3) == instance_seeds(42, 10)[:3]

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            instance_seeds(42, -1)

    def test_iter_instance_rngs_matches_seeds(self):
        seeds = instance_seeds(9, 3)
        for rng, seed in zip(iter_instance_rngs(9, 3), seeds):
            assert np.array_equal(
                rng.random(3), np.random.default_rng(seed).random(3)
            )
