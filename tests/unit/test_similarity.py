"""Unit tests for the similarity substrate (repro.similarity)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.similarity import (
    CharNgramVectorizer,
    asymmetric_similarity,
    cosine_similarity,
    euclidean_similarity,
    levenshtein_distance,
    normalized_levenshtein,
    pearson_similarity,
    string_similarity,
)


class TestLevenshtein:
    @pytest.mark.parametrize(
        "a, b, expected",
        [
            ("", "", 0),
            ("abc", "abc", 0),
            ("abc", "", 3),
            ("", "xyz", 3),
            ("kitten", "sitting", 3),
            ("flaw", "lawn", 2),
            ("a", "b", 1),
        ],
    )
    def test_known_distances(self, a, b, expected):
        assert levenshtein_distance(a, b) == expected

    def test_symmetry(self):
        assert levenshtein_distance("abcdef", "azced") == levenshtein_distance(
            "azced", "abcdef"
        )

    def test_normalized_range(self):
        assert normalized_levenshtein("same", "same") == 1.0
        assert normalized_levenshtein("", "") == 1.0
        assert normalized_levenshtein("abc", "xyz") == 0.0
        assert 0.0 < normalized_levenshtein("MSR", "MS") < 1.0


class TestVectorizer:
    def test_deterministic_across_instances(self):
        a = CharNgramVectorizer().transform("Information Technology")
        b = CharNgramVectorizer().transform("Information Technology")
        assert np.array_equal(a, b)

    def test_unit_norm(self):
        vec = CharNgramVectorizer().transform("Berkeley")
        assert np.linalg.norm(vec) == pytest.approx(1.0)

    def test_empty_string_is_handled(self):
        vec = CharNgramVectorizer(pad=False).transform("")
        assert np.all(vec == 0.0)

    def test_similar_strings_are_close(self):
        vectorizer = CharNgramVectorizer()
        uwisc = vectorizer.transform("UWisc")
        uwise = vectorizer.transform("UWise")
        google = vectorizer.transform("Google")
        assert cosine_similarity(uwisc, uwise) > cosine_similarity(uwisc, google)

    def test_transform_many_order(self):
        vectorizer = CharNgramVectorizer()
        matrix = vectorizer.transform_many(["a", "bb"])
        assert np.array_equal(matrix[0], vectorizer.transform("a"))
        assert np.array_equal(matrix[1], vectorizer.transform("bb"))

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            CharNgramVectorizer(ngram_range=(3, 2))
        with pytest.raises(ConfigurationError):
            CharNgramVectorizer(dimension=0)


class TestVectorMeasures:
    def test_cosine_bounds(self):
        u = np.array([1.0, 0.0])
        v = np.array([0.0, 1.0])
        assert cosine_similarity(u, u) == pytest.approx(1.0)
        assert cosine_similarity(u, v) == pytest.approx(0.0)
        assert cosine_similarity(u, np.zeros(2)) == 0.0

    def test_euclidean_similarity(self):
        u = np.array([1.0, 2.0])
        assert euclidean_similarity(u, u) == pytest.approx(1.0)
        assert 0.0 < euclidean_similarity(u, u + 3.0) < 1.0

    def test_pearson_rescaling(self):
        u = np.array([1.0, 2.0, 3.0])
        assert pearson_similarity(u, u) == pytest.approx(1.0)
        assert pearson_similarity(u, -u) == pytest.approx(0.0)
        assert pearson_similarity(u, np.array([1.0, 1.0, 1.0])) == 0.0

    def test_pearson_constant_vectors(self):
        c = np.array([2.0, 2.0])
        assert pearson_similarity(c, c) == 1.0

    def test_asymmetric_containment(self):
        u = np.array([1.0, 0.0])
        v = np.array([1.0, 1.0])
        assert asymmetric_similarity(u, v) == pytest.approx(1.0)  # u inside v
        assert asymmetric_similarity(v, u) == pytest.approx(0.5)

    def test_asymmetric_zero_vector(self):
        assert asymmetric_similarity(np.zeros(2), np.ones(2)) == 0.0


class TestStringSimilarity:
    def test_identity_is_one(self):
        sim = string_similarity("cosine")
        assert sim("MIT", "MIT") == 1.0

    @pytest.mark.parametrize(
        "measure", ["cosine", "euclidean", "pearson", "asymmetric", "levenshtein"]
    )
    def test_all_measures_in_range(self, measure):
        sim = string_similarity(measure)
        for a, b in [("UWisc", "UWise"), ("MSR", "MS Research"), ("x", "y")]:
            assert 0.0 <= sim(a, b) <= 1.0

    def test_unknown_measure_rejected(self):
        with pytest.raises(ConfigurationError):
            string_similarity("jaccard")

    def test_threshold_suppresses_weak_matches(self):
        plain = string_similarity("levenshtein")
        gated = string_similarity("levenshtein", threshold=0.9)
        assert plain("UWisc", "Google") > 0.0 or True
        assert gated("UWisc", "Google") == 0.0
        assert gated("same", "same") == 1.0

    def test_threshold_validation(self):
        with pytest.raises(ConfigurationError):
            string_similarity("cosine", threshold=1.0)

    def test_symmetric_measures_cached_symmetrically(self):
        sim = string_similarity("cosine")
        assert sim("abc", "abd") == sim("abd", "abc")

    def test_asymmetric_measure_respects_direction(self):
        sim = string_similarity("asymmetric")
        ab = sim("MS", "MSR")
        ba = sim("MSR", "MS")
        assert ab != ba  # containment is directional

    def test_integrates_with_date(self, tiny_dataset):
        from repro import DATE, DateConfig

        config = DateConfig(
            similarity=string_similarity("levenshtein"),
            similarity_weight=0.3,
        )
        result = DATE(config).run(tiny_dataset)
        assert set(result.truths) == {"t0", "t1", "t2", "t3"}
