"""Unit tests for the dataset substrate (repro.datasets)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import ConfigurationError, WorldConfig
from repro.datasets import (
    PalmM515LikeSampler,
    generate_qatar_living_like,
    generate_world,
    inject_copiers,
    load_dataset,
    sample_costs,
    save_dataset,
)
from repro.datasets.qatar_living import QATAR_LIVING_LABELS


class TestWorldConfig:
    def test_defaults_valid(self):
        WorldConfig()

    @pytest.mark.parametrize(
        "field, value",
        [
            ("n_tasks", 0),
            ("n_workers", 0),
            ("num_false", 0),
            ("participation_decay", 1.0),
            ("reliability_alpha", 0.0),
            ("reliability_clip", (0.0, 0.9)),
            ("false_value_style", "gaussian"),
            ("zipf_exponent", -1.0),
            ("requirement_range", (3.0, 2.0)),
        ],
    )
    def test_validation(self, field, value):
        with pytest.raises(ConfigurationError):
            WorldConfig(**{field: value})

    def test_shared_labels_must_match_num_false(self):
        with pytest.raises(ConfigurationError):
            WorldConfig(num_false=2, shared_labels=("A", "B"))

    def test_evolve(self):
        config = WorldConfig().evolve(n_tasks=10)
        assert config.n_tasks == 10


class TestGenerateWorld:
    def test_shapes(self):
        config = WorldConfig(n_tasks=20, n_workers=10, target_claims=100)
        world = generate_world(config, seed=1)
        assert world.n_tasks == 20
        assert world.n_workers == 10
        assert all(not w.is_copier for w in world.workers)

    def test_deterministic(self):
        config = WorldConfig(n_tasks=15, n_workers=8, target_claims=60)
        a = generate_world(config, seed=9)
        b = generate_world(config, seed=9)
        assert a.claims == b.claims
        assert a.tasks == b.tasks

    def test_seed_changes_data(self):
        config = WorldConfig(n_tasks=15, n_workers=8, target_claims=60)
        a = generate_world(config, seed=1)
        b = generate_world(config, seed=2)
        assert a.claims != b.claims

    def test_claim_budget_roughly_met(self):
        config = WorldConfig(n_tasks=50, n_workers=40, target_claims=1000)
        world = generate_world(config, seed=3)
        assert 700 <= world.n_claims <= 1300

    def test_participation_decays_with_task_index(self):
        config = WorldConfig(
            n_tasks=60, n_workers=50, target_claims=1500, participation_decay=0.8
        )
        world = generate_world(config, seed=4)
        first_third = sum(
            len(world.claims_by_task[t.task_id]) for t in world.tasks[:20]
        )
        last_third = sum(
            len(world.claims_by_task[t.task_id]) for t in world.tasks[-20:]
        )
        assert first_third > last_third

    def test_task_attributes_in_range(self):
        config = WorldConfig(n_tasks=30, n_workers=10, target_claims=100)
        world = generate_world(config, seed=5)
        for task in world.tasks:
            assert 2.0 <= task.requirement <= 4.0
            assert 5.0 <= task.value <= 8.0
            assert task.truth in task.domain

    def test_reliability_drives_correctness(self):
        """Across tasks, high-reliability workers answer correctly more
        often than low-reliability ones."""
        config = WorldConfig(
            n_tasks=80,
            n_workers=30,
            target_claims=1500,
            reliability_clip=(0.2, 0.95),
        )
        world = generate_world(config, seed=6)
        rates = {}
        for worker in world.workers:
            claims = world.claims_by_worker[worker.worker_id]
            if len(claims) < 10:
                continue
            correct = sum(
                1
                for task_id, value in claims.items()
                if value == world.task_by_id[task_id].truth
            )
            rates[worker.worker_id] = (worker.reliability, correct / len(claims))
        reliabilities = np.array([r for r, _ in rates.values()])
        observed = np.array([o for _, o in rates.values()])
        assert np.corrcoef(reliabilities, observed)[0, 1] > 0.5

    def test_shared_labels_used(self):
        config = WorldConfig(
            n_tasks=10,
            n_workers=5,
            target_claims=30,
            num_false=2,
            shared_labels=("Good", "Bad", "Other"),
        )
        world = generate_world(config, seed=7)
        for task in world.tasks:
            assert task.domain == ("Good", "Bad", "Other")


class TestInjectCopiers:
    def make_world(self):
        return generate_world(
            WorldConfig(n_tasks=30, n_workers=16, target_claims=300), seed=8
        )

    def test_copier_count_and_flags(self):
        world = inject_copiers(self.make_world(), 4, seed=1)
        copiers = [w for w in world.workers if w.is_copier]
        assert len(copiers) == 4
        for copier in copiers:
            assert copier.sources
            assert copier.copy_prob > 0

    def test_no_loop_dependence(self):
        world = inject_copiers(self.make_world(), 5, seed=2)
        copier_ids = {w.worker_id for w in world.workers if w.is_copier}
        for worker in world.workers:
            for source in worker.sources:
                assert source not in copier_ids

    def test_copiers_mostly_agree_with_sources(self):
        world = inject_copiers(
            self.make_world(), 4, copy_prob=1.0, follow_prob=1.0, extra_prob=0.0, seed=3
        )
        for worker in world.workers:
            if not worker.is_copier:
                continue
            source_claims = world.claims_by_worker[worker.sources[0]]
            own_claims = world.claims_by_worker[worker.worker_id]
            assert set(own_claims) == set(source_claims)
            assert all(own_claims[t] == source_claims[t] for t in own_claims)

    def test_zero_copiers_is_identity(self):
        world = self.make_world()
        assert inject_copiers(world, 0, seed=1) is world

    def test_explicit_copier_ids(self):
        world = self.make_world()
        ids = [world.workers[0].worker_id, world.workers[3].worker_id]
        injected = inject_copiers(world, 2, copier_ids=ids, seed=4)
        assert {w.worker_id for w in injected.workers if w.is_copier} == set(ids)

    def test_source_pool_clusters_sources(self):
        world = inject_copiers(
            self.make_world(), 6, source_pool_size=2, seed=5
        )
        sources = {
            s for w in world.workers if w.is_copier for s in w.sources
        }
        assert len(sources) <= 2

    def test_too_many_copiers_rejected(self):
        with pytest.raises(ConfigurationError):
            inject_copiers(self.make_world(), 16, seed=1)

    def test_unknown_copier_id_rejected(self):
        with pytest.raises(ConfigurationError):
            inject_copiers(self.make_world(), 1, copier_ids=["ghost"], seed=1)

    def test_parameter_validation(self):
        world = self.make_world()
        with pytest.raises(ConfigurationError):
            inject_copiers(world, 2, copy_prob=1.5, seed=1)
        with pytest.raises(ConfigurationError):
            inject_copiers(world, 2, sources_per_copier=0, seed=1)
        with pytest.raises(ConfigurationError):
            inject_copiers(world, 2, source_pool_size=0, seed=1)
        with pytest.raises(ConfigurationError):
            inject_copiers(world, 2, source_selection="random", seed=1)

    def test_low_reliability_source_selection(self):
        world = self.make_world()
        injected = inject_copiers(
            world, 4, source_selection="low_reliability", seed=6
        )
        reliabilities = sorted(w.reliability for w in world.workers)
        # All chosen sources sit in the bottom-reliability portion.
        cutoff = reliabilities[len(reliabilities) // 2]
        for worker in injected.workers:
            for source in worker.sources:
                assert injected.worker_by_id[source].reliability <= cutoff


class TestQatarLivingPreset:
    def test_shape_matches_paper(self):
        dataset = generate_qatar_living_like(seed=1)
        assert dataset.n_tasks == 300
        assert dataset.n_workers == 120
        assert sum(1 for w in dataset.workers if w.is_copier) == 30
        assert 4500 <= dataset.n_claims <= 7500
        for task in dataset.tasks:
            assert task.domain == QATAR_LIVING_LABELS

    def test_deterministic(self):
        a = generate_qatar_living_like(seed=5, n_tasks=30, n_workers=12, n_copiers=3)
        b = generate_qatar_living_like(seed=5, n_tasks=30, n_workers=12, n_copiers=3)
        assert a.claims == b.claims


class TestAuctionPrices:
    def test_sample_range(self):
        sampler = PalmM515LikeSampler()
        prices = sampler.sample(500, seed=1)
        assert prices.min() >= sampler.floor
        assert prices.max() <= sampler.ceiling

    def test_right_skew(self):
        prices = PalmM515LikeSampler().sample(2000, seed=2)
        assert np.mean(prices) > np.median(prices) * 0.99

    def test_round_heaping(self):
        sampler = PalmM515LikeSampler(round_fraction=1.0, round_to=5.0)
        prices = sampler.sample(200, seed=3)
        assert np.allclose(prices % 5.0, 0.0)

    def test_deterministic(self):
        a = PalmM515LikeSampler().sample(50, seed=4)
        b = PalmM515LikeSampler().sample(50, seed=4)
        assert np.array_equal(a, b)

    def test_sample_costs_range(self):
        costs = sample_costs(300, seed=5, cost_range=(1.0, 10.0))
        assert costs.min() >= 1.0
        assert costs.max() <= 10.0

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            PalmM515LikeSampler(median=-1.0)
        with pytest.raises(ConfigurationError):
            PalmM515LikeSampler(floor=10.0, ceiling=5.0)
        with pytest.raises(ConfigurationError):
            sample_costs(10, cost_range=(5.0, 1.0))
        with pytest.raises(ConfigurationError):
            PalmM515LikeSampler().sample(-1)


class TestDatasetIO:
    def test_round_trip(self, tmp_path, qlf_small):
        save_dataset(qlf_small, tmp_path / "ds")
        loaded = load_dataset(tmp_path / "ds")
        assert loaded.claims == qlf_small.claims
        assert loaded.tasks == qlf_small.tasks
        assert loaded.workers == qlf_small.workers

    def test_missing_file_rejected(self, tmp_path):
        from repro.errors import DataFormatError

        with pytest.raises(DataFormatError):
            load_dataset(tmp_path / "nope")

    def test_reserved_separator_rejected(self, tmp_path):
        from repro import Dataset, Task, WorkerProfile
        from repro.errors import DataFormatError

        bad = Dataset(
            tasks=(Task(task_id="t", domain=("a|b", "c")),),
            workers=(WorkerProfile(worker_id="w"),),
            claims={},
        )
        with pytest.raises(DataFormatError):
            save_dataset(bad, tmp_path / "bad")

    def test_schema_mismatch_rejected(self, tmp_path, qlf_small):
        from repro.errors import DataFormatError

        save_dataset(qlf_small, tmp_path / "ds")
        (tmp_path / "ds" / "tasks.csv").write_text("wrong,columns\n1,2\n")
        with pytest.raises(DataFormatError):
            load_dataset(tmp_path / "ds")

    def test_duplicate_claim_row_rejected(self, tmp_path, qlf_small):
        # A worker submits at most one value per task; a corrupt archive
        # repeating a (worker, task) row must fail loudly instead of
        # silently keeping the last value (streaming replay depends on
        # deterministic claim sets).
        from repro.errors import DataFormatError, ReproError

        save_dataset(qlf_small, tmp_path / "ds")
        claims_csv = tmp_path / "ds" / "claims.csv"
        lines = claims_csv.read_text().splitlines()
        worker_id, task_id, _ = lines[1].split(",")
        claims_csv.write_text(
            "\n".join(lines + [f"{worker_id},{task_id},another-value"]) + "\n"
        )
        with pytest.raises(DataFormatError, match="duplicate claim") as excinfo:
            load_dataset(tmp_path / "ds")
        assert worker_id in str(excinfo.value)
        assert task_id in str(excinfo.value)
        assert isinstance(excinfo.value, ReproError)
