"""Registry semantics and Prometheus exposition (DESIGN.md §13).

These tests pin the instrumentation core's contract: the disabled
registry hands out the shared no-op stub, enabled families enforce
kind/label consistency, counters are monotone, and the exposition
renders the exact text format Prometheus scrapes (label escaping,
cumulative buckets, ``+Inf`` == count, integers without a decimal
point).
"""

from __future__ import annotations

import threading

import pytest

from repro.errors import ConfigurationError
from repro.obs import (
    DEFAULT_TIME_BUCKETS,
    NULL,
    MetricsRegistry,
    get_registry,
    render_prometheus,
    set_registry,
)


class TestDisabledRegistry:
    def test_disabled_getters_return_the_shared_null_stub(self):
        registry = MetricsRegistry(enabled=False)
        assert registry.counter("c") is NULL
        assert registry.gauge("g") is NULL
        assert registry.histogram("h") is NULL
        assert registry.timer("t") is NULL

    def test_null_stub_is_inert_and_falsy(self):
        assert not NULL
        NULL.inc()
        NULL.dec()
        NULL.set(3.0)
        NULL.observe(1.0)
        with NULL.time():
            pass
        assert NULL.value == 0.0
        assert NULL.snapshot() == ((), 0.0, 0)

    def test_disabled_registry_registers_nothing(self):
        registry = MetricsRegistry(enabled=False)
        registry.counter("c").inc()
        assert registry.collect() == []
        assert render_prometheus(registry) == ""

    def test_enable_affects_the_next_binding(self):
        registry = MetricsRegistry(enabled=False)
        assert registry.counter("c") is NULL
        registry.enable()
        counter = registry.counter("c")
        assert counter is not NULL
        counter.inc()
        assert counter.value == 1.0


class TestRegistrySemantics:
    def _registry(self) -> MetricsRegistry:
        return MetricsRegistry(enabled=True)

    def test_same_name_and_labels_is_the_same_series(self):
        registry = self._registry()
        a = registry.counter("hits", labels={"route": "/x"})
        b = registry.counter("hits", labels={"route": "/x"})
        assert a is b
        a.inc()
        b.inc(2)
        assert a.value == 3.0

    def test_distinct_label_values_are_independent_series(self):
        registry = self._registry()
        registry.counter("hits", labels={"route": "/x"}).inc()
        registry.counter("hits", labels={"route": "/y"}).inc(5)
        (family,) = registry.collect()
        assert {s.value for s in family.series.values()} == {1.0, 5.0}

    def test_kind_conflict_raises(self):
        registry = self._registry()
        registry.counter("m")
        with pytest.raises(ConfigurationError, match="already registered"):
            registry.gauge("m")

    def test_label_name_conflict_raises(self):
        registry = self._registry()
        registry.counter("m", labels={"a": "1"})
        with pytest.raises(ConfigurationError, match="labels"):
            registry.counter("m", labels={"b": "1"})

    def test_counter_is_monotone(self):
        registry = self._registry()
        counter = registry.counter("c")
        counter.inc(0)
        counter.inc(2.5)
        with pytest.raises(ConfigurationError, match="cannot decrease"):
            counter.inc(-1)
        assert counter.value == 2.5

    def test_gauge_moves_both_ways(self):
        gauge = self._registry().gauge("g")
        gauge.set(10)
        gauge.inc(2)
        gauge.dec(5)
        assert gauge.value == 7.0

    def test_histogram_buckets_are_sorted_deduped_upper_bounds(self):
        registry = self._registry()
        histogram = registry.histogram("h", buckets=(5.0, 1.0, 5.0, 2.0))
        assert histogram.bounds == (1.0, 2.0, 5.0)
        for value in (0.5, 1.0, 1.5, 100.0):
            histogram.observe(value)
        counts, total, count = histogram.snapshot()
        # le-style: 1.0 lands in the first bucket (bounds are inclusive
        # upper limits), 100.0 overflows into +Inf.
        assert counts == (2, 1, 0, 1)
        assert count == 4
        assert total == pytest.approx(103.0)

    def test_empty_bucket_list_rejected(self):
        with pytest.raises(ConfigurationError, match="bucket"):
            self._registry().histogram("h", buckets=())

    def test_timer_uses_duration_buckets_and_observes_elapsed(self):
        registry = self._registry()
        timer = registry.timer("t")
        assert timer.bounds == tuple(sorted(DEFAULT_TIME_BUCKETS))
        with timer.time():
            pass
        assert timer.count == 1
        assert timer.total >= 0.0

    def test_concurrent_increments_do_not_lose_updates(self):
        registry = self._registry()
        counter = registry.counter("c")

        def work():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=work) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 8000.0

    def test_as_dict_snapshot(self):
        registry = self._registry()
        registry.counter("c", "help text").inc(2)
        registry.histogram("h", buckets=(1.0, 2.0)).observe(1.5)
        payload = registry.as_dict()
        assert payload["c"]["kind"] == "counter"
        assert payload["c"]["help"] == "help text"
        assert payload["c"]["series"][0]["value"] == 2.0
        assert payload["h"]["series"][0]["counts"] == [0, 1, 0]
        assert payload["h"]["series"][0]["count"] == 1

    def test_reset_drops_families_but_keeps_enabled(self):
        registry = self._registry()
        registry.counter("c").inc()
        registry.reset()
        assert registry.collect() == []
        assert registry.enabled


class TestProcessRegistry:
    def test_set_registry_swaps_and_returns_previous(self):
        replacement = MetricsRegistry(enabled=True)
        previous = set_registry(replacement)
        try:
            assert get_registry() is replacement
        finally:
            set_registry(previous)
        assert get_registry() is previous


class TestPrometheusExposition:
    def _registry(self) -> MetricsRegistry:
        return MetricsRegistry(enabled=True)

    def test_counter_rendering_with_help_and_type(self):
        registry = self._registry()
        registry.counter("requests_total", "Requests served.").inc(3)
        text = render_prometheus(registry)
        assert "# HELP requests_total Requests served." in text
        assert "# TYPE requests_total counter" in text
        assert "\nrequests_total 3\n" in text

    def test_integer_values_render_without_decimal_point(self):
        registry = self._registry()
        registry.gauge("g").set(4.0)
        assert "\ng 4\n" in "\n" + render_prometheus(registry)

    def test_float_values_render_via_repr(self):
        registry = self._registry()
        registry.gauge("g").set(0.25)
        assert "g 0.25" in render_prometheus(registry)

    def test_label_values_are_escaped(self):
        registry = self._registry()
        registry.counter(
            "c", labels={"path": 'a"b\\c\nd'}
        ).inc()
        text = render_prometheus(registry)
        assert 'path="a\\"b\\\\c\\nd"' in text

    def test_help_text_escapes_newline_and_backslash(self):
        registry = self._registry()
        registry.counter("c", "line1\nline2 \\ slash").inc()
        assert "# HELP c line1\\nline2 \\\\ slash" in render_prometheus(registry)

    def test_labels_render_in_sorted_name_order(self):
        registry = self._registry()
        registry.counter("c", labels={"z": "1", "a": "2"}).inc()
        assert 'c{a="2",z="1"} 1' in render_prometheus(registry)

    def test_histogram_buckets_are_cumulative_and_inf_equals_count(self):
        registry = self._registry()
        histogram = registry.histogram("lat", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            histogram.observe(value)
        text = render_prometheus(registry)
        assert 'lat_bucket{le="0.1"} 1' in text
        assert 'lat_bucket{le="1"} 2' in text
        assert 'lat_bucket{le="+Inf"} 3' in text
        assert "lat_sum 5.55" in text
        assert "lat_count 3" in text

    def test_histogram_bucket_labels_merge_with_series_labels(self):
        registry = self._registry()
        registry.histogram(
            "lat", labels={"route": "/x"}, buckets=(1.0,)
        ).observe(0.5)
        text = render_prometheus(registry)
        assert 'lat_bucket{route="/x",le="1"} 1' in text
        assert 'lat_sum{route="/x"} 0.5' in text

    def test_families_render_in_name_order(self):
        registry = self._registry()
        registry.counter("zzz").inc()
        registry.counter("aaa").inc()
        text = render_prometheus(registry)
        assert text.index("aaa") < text.index("zzz")

    def test_output_ends_with_single_trailing_newline(self):
        registry = self._registry()
        registry.counter("c").inc()
        text = render_prometheus(registry)
        assert text.endswith("\n")
        assert not text.endswith("\n\n")


class TestDropLabels:
    """Series retirement: evicted entities must not leak label cardinality."""

    def test_drops_every_series_matching_the_label_value(self):
        registry = MetricsRegistry(enabled=True)
        registry.counter("ingests", labels={"campaign": "a"}).inc()
        registry.counter("ingests", labels={"campaign": "b"}).inc()
        registry.timer("latency", labels={"campaign": "a"}).observe(0.1)
        dropped = registry.drop_labels("campaign", "a")
        assert dropped == 2
        remaining = {
            instrument.labels["campaign"]
            for family in registry.collect()
            for instrument in family.series.values()
            if "campaign" in instrument.labels
        }
        assert remaining == {"b"}

    def test_families_without_the_label_are_untouched(self):
        registry = MetricsRegistry(enabled=True)
        registry.counter("total").inc()
        registry.counter("by_route", labels={"route": "/x"}).inc()
        assert registry.drop_labels("campaign", "a") == 0
        assert registry.counter("total").value == 1.0

    def test_dropped_series_restart_from_zero(self):
        registry = MetricsRegistry(enabled=True)
        registry.counter("ingests", labels={"campaign": "a"}).inc(5)
        registry.drop_labels("campaign", "a")
        # A recreated campaign with the same id gets a fresh series.
        assert registry.counter("ingests", labels={"campaign": "a"}).value == 0.0

    def test_dropped_series_vanish_from_exposition(self):
        registry = MetricsRegistry(enabled=True)
        registry.counter("ingests", labels={"campaign": "gone"}).inc()
        registry.drop_labels("campaign", "gone")
        assert 'campaign="gone"' not in render_prometheus(registry)

    def test_disabled_registry_drop_is_a_harmless_no_op(self):
        registry = MetricsRegistry(enabled=False)
        assert registry.drop_labels("campaign", "a") == 0
