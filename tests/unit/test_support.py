"""Unit tests for support counts and truth selection (repro.core.support)."""

from __future__ import annotations

import pytest

from repro.core import DatasetIndex
from repro.core.support import select_truths, support_counts


def full_independence(index):
    return [
        {value: {i: 1.0 for i in group} for value, group in groups.items()}
        for groups in index.value_groups
    ]


class TestSupportCounts:
    def test_base_counts_sum_accuracy(self, tiny_dataset):
        index = DatasetIndex(tiny_dataset)
        accuracy = index.initial_accuracy_matrix(0.5)
        table = support_counts(index, accuracy, full_independence(index))
        # t1: A has 3 supporters at 0.5 accuracy, B has 2.
        assert table[1]["A"] == pytest.approx(1.5)
        assert table[1]["B"] == pytest.approx(1.0)

    def test_independence_discount_reduces_support(self, tiny_dataset):
        index = DatasetIndex(tiny_dataset)
        accuracy = index.initial_accuracy_matrix(0.5)
        independence = full_independence(index)
        b_group = index.value_groups[1]["B"]
        independence[1]["B"][b_group[-1]] = 0.2
        table = support_counts(index, accuracy, independence)
        assert table[1]["B"] == pytest.approx(0.5 + 0.5 * 0.2)

    def test_non_negative(self, tiny_dataset):
        index = DatasetIndex(tiny_dataset)
        accuracy = index.initial_accuracy_matrix(0.7)
        table = support_counts(index, accuracy, full_independence(index))
        for counts in table:
            for value in counts.values():
                assert value >= 0.0


class TestSimilarityAdjustment:
    def test_similar_value_lends_support(self, tiny_dataset):
        index = DatasetIndex(tiny_dataset)
        accuracy = index.initial_accuracy_matrix(0.5)
        independence = full_independence(index)

        def sim(a: str, b: str) -> float:
            return 0.5  # everything half-similar

        plain = support_counts(index, accuracy, independence)
        adjusted = support_counts(
            index, accuracy, independence, similarity=sim, similarity_weight=1.0
        )
        # t1: A gains 0.5 * mass(B \ A) = 0.5 * 1.0 = 0.5.
        assert adjusted[1]["A"] == pytest.approx(plain[1]["A"] + 0.5)
        assert adjusted[1]["B"] == pytest.approx(plain[1]["B"] + 0.5 * 1.5)

    def test_zero_weight_is_noop(self, tiny_dataset):
        index = DatasetIndex(tiny_dataset)
        accuracy = index.initial_accuracy_matrix(0.5)
        independence = full_independence(index)
        plain = support_counts(index, accuracy, independence)
        adjusted = support_counts(
            index,
            accuracy,
            independence,
            similarity=lambda a, b: 1.0,
            similarity_weight=0.0,
        )
        assert adjusted == plain

    def test_zero_similarity_is_noop(self, tiny_dataset):
        index = DatasetIndex(tiny_dataset)
        accuracy = index.initial_accuracy_matrix(0.5)
        independence = full_independence(index)
        plain = support_counts(index, accuracy, independence)
        adjusted = support_counts(
            index,
            accuracy,
            independence,
            similarity=lambda a, b: 0.0,
            similarity_weight=1.0,
        )
        assert adjusted == plain

    def test_weight_out_of_range_rejected(self, tiny_dataset):
        index = DatasetIndex(tiny_dataset)
        accuracy = index.initial_accuracy_matrix(0.5)
        with pytest.raises(ValueError):
            support_counts(
                index,
                accuracy,
                full_independence(index),
                similarity=lambda a, b: 1.0,
                similarity_weight=1.5,
            )


class TestSelectTruths:
    def test_argmax(self):
        assert select_truths([{"A": 1.0, "B": 2.0}]) == ["B"]

    def test_tie_breaks_lexicographically(self):
        assert select_truths([{"zebra": 1.0, "apple": 1.0}]) == ["apple"]

    def test_empty_task_yields_none(self):
        assert select_truths([{}, {"A": 1.0}]) == [None, "A"]
